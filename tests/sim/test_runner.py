"""Integration tests for the experiment harness.

These run short simulations (a few virtual seconds) and assert the
qualitative properties the paper's evaluation establishes; the full
curves live in ``benchmarks/``.
"""

import math

import pytest

from repro.errors import ConfigError
from repro.sim.runner import Experiment, ExperimentConfig, PROTOCOLS


def quick(protocol, **overrides):
    defaults = dict(
        protocol=protocol,
        num_validators=10,
        load_tps=2_000.0,
        duration=8.0,
        warmup=3.0,
        seed=2,
    )
    defaults.update(overrides)
    return Experiment(ExperimentConfig(**defaults)).run()


class TestConfigValidation:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(protocol="hotstuff")

    def test_too_many_faults_rejected(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(num_validators=10, num_crashed=4)
        with pytest.raises(ConfigError):
            ExperimentConfig(num_validators=10, num_crashed=2, num_equivocators=2)

    def test_batching_above_sim_cap(self):
        config = ExperimentConfig(load_tps=100_000, max_sim_tx_rate=2_000)
        assert config.batch_weight == pytest.approx(50.0)
        assert config.sim_tx_rate == 2_000

    def test_no_batching_below_cap(self):
        config = ExperimentConfig(load_tps=500, max_sim_tx_rate=2_000)
        assert config.batch_weight == 1.0


@pytest.mark.slow
class TestAllProtocolsRun:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_commits_and_agreement(self, protocol):
        result = quick(protocol)
        assert result.blocks_committed > 0
        assert result.throughput_tps > 0
        assert not math.isnan(result.latency.avg)

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_deterministic_replay(self, protocol):
        a = quick(protocol, duration=5.0, warmup=2.0)
        b = quick(protocol, duration=5.0, warmup=2.0)
        assert a.latency == b.latency
        assert a.throughput_tps == b.throughput_tps
        assert a.messages_sent == b.messages_sent

    def test_different_seeds_differ(self):
        a = quick("mahi-mahi-5", seed=1)
        b = quick("mahi-mahi-5", seed=2)
        assert a.latency != b.latency


@pytest.mark.slow
class TestPaperShape:
    def test_latency_ordering_matches_figure_3(self):
        """MM-4 < MM-5 < {CM, Tusk} under ideal conditions (claims
        C1/C5).  Tusk-vs-CM absolute ordering at short durations is
        noisy in the simulator (see EXPERIMENTS.md); the robust paper
        property is that both Mahi-Mahi variants beat both baselines."""
        results = {p: quick(p).latency.avg for p in PROTOCOLS}
        assert results["mahi-mahi-4"] < results["mahi-mahi-5"]
        assert results["mahi-mahi-5"] < results["cordial-miners"]
        assert results["mahi-mahi-5"] < results["tusk"]

    def test_fault_latency_ordering_matches_figure_4(self):
        """Claim C3 plus Tusk's fault behaviour: with 3 crashed
        validators Tusk degrades far more than the uncertified DAGs."""
        results = {p: quick(p, num_crashed=3).latency.avg for p in PROTOCOLS}
        assert results["mahi-mahi-4"] < results["cordial-miners"]
        assert results["mahi-mahi-5"] < results["cordial-miners"]
        assert results["tusk"] > results["cordial-miners"]

    def test_crash_faults_skip_directly(self):
        """Claim C3: Mahi-Mahi direct-skips dead leaders; Cordial Miners
        cannot, paying about two extra rounds."""
        mahi = quick("mahi-mahi-5", num_crashed=3)
        assert mahi.direct_skips > 0
        cm = quick("cordial-miners", num_crashed=3)
        assert cm.direct_skips == 0
        assert mahi.latency.avg < cm.latency.avg

    def test_mahi_mahi_commits_mostly_directly(self):
        """Section 5: direct commits dominate in the benign case."""
        result = quick("mahi-mahi-5")
        assert result.direct_commits > 10 * (
            result.indirect_commits + result.indirect_skips
        )

    def test_adversary_degrades_but_preserves_liveness(self):
        benign = quick("mahi-mahi-5")
        attacked = quick(
            "mahi-mahi-5", adversary_targets=3, adversary_delay=0.3
        )
        assert attacked.blocks_committed > 0
        assert attacked.latency.avg > benign.latency.avg

    def test_equivocators_do_not_break_safety(self):
        result = quick("mahi-mahi-5", num_equivocators=3, duration=6.0)
        assert result.blocks_committed > 0  # run() asserts agreement

    def test_uniform_delay_latency_tracks_message_delays(self):
        """With constant one-way delay d and no pacing, leader commit
        latency is close to the analytical w * d (Section 2.2)."""
        result = quick(
            "mahi-mahi-5",
            uniform_delay=0.1,
            block_interval=0.0,
            model_cpu=False,
            load_tps=200.0,
        )
        # Blocks commit after ~5 delays; transactions additionally wait
        # in the mempool for the next proposal.
        assert 0.4 < result.latency.p50 < 0.9
