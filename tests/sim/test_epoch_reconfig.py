"""Epoch-based committee reconfiguration: the validator set as a
first-class, round-versioned object.

Covers the schedule/command layer (`repro.committee`), the quorum
arithmetic following the active epoch (including waves straddling an
epoch boundary), and the fault-schedule edge cases: leaving the
validator that owns a wave's leader slot, a join landing mid-checkpoint-
recovery, and a leave that would shrink the committee below the BFT
minimum.
"""

import pytest

from repro.committee import (
    Committee,
    CommitteeSchedule,
    ReconfigCommand,
    reconfig_commands_in,
)
from repro.errors import ConfigError
from repro.sim.faults import FaultEvent
from repro.sim.runner import Experiment, ExperimentConfig
from repro.statesync import Checkpoint, GENESIS_STATE
from repro.transaction import Transaction


def make_epoch_config(**overrides) -> ExperimentConfig:
    defaults = dict(
        protocol="mahi-mahi-5",
        num_validators=6,
        initial_committee_size=5,
        epoch_reconfig=True,
        load_tps=800,
        duration=10.0,
        warmup=2.0,
        gc_depth=64,
        recover_mode="checkpoint",
        checkpoint_interval=2,
        fault_schedule=(FaultEvent(1.5, 5, "join"),),
        seed=11,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestCommitteeSchedule:
    def test_static_schedule_resolves_genesis_everywhere(self):
        schedule = CommitteeSchedule(Committee.of_size(4))
        assert schedule.is_static
        assert schedule.quorum_threshold(0) == 3
        assert schedule.quorum_threshold(10_000) == 3
        assert schedule.committee_at(42).members == (0, 1, 2, 3)

    def test_threshold_follows_epoch_across_the_boundary(self):
        """The straddle regression: round 9 resolves against the old
        committee, round 10 (the activation round) against the new."""
        schedule = CommitteeSchedule(Committee.of_size(4), provisioned=5)
        schedule.schedule_epoch(10, Committee.of_size(5))
        assert schedule.size_at(9) == 4
        assert schedule.quorum_threshold(9) == 3
        assert schedule.size_at(10) == 5
        assert schedule.quorum_threshold(10) == 4
        assert schedule.validity_threshold(9) == 2
        assert schedule.validity_threshold(10) == 2
        assert schedule.epoch_at(9).epoch_id == 0
        assert schedule.epoch_at(10).epoch_id == 1

    def test_activation_rounds_strictly_increase(self):
        schedule = CommitteeSchedule(Committee.of_size(4), provisioned=6)
        schedule.schedule_epoch(8, Committee.of_size(5))
        with pytest.raises(ConfigError):
            schedule.schedule_epoch(8, Committee.of_size(6))
        with pytest.raises(ConfigError):
            schedule.schedule_epoch(5, Committee.of_size(6))

    def test_apply_command_join_then_leave(self):
        schedule = CommitteeSchedule(Committee.of_size(4), provisioned=5)
        epoch = schedule.apply_command(ReconfigCommand("join", 4), 7)
        assert epoch is not None and epoch.committee.members == (0, 1, 2, 3, 4)
        epoch = schedule.apply_command(ReconfigCommand("leave", 1), 12)
        assert epoch is not None and epoch.committee.members == (0, 2, 3, 4)
        assert schedule.size_at(6) == 4
        assert schedule.size_at(7) == 5
        assert schedule.size_at(12) == 4

    def test_commands_colliding_on_activation_round_fold_forward(self):
        schedule = CommitteeSchedule(Committee.of_size(4), provisioned=6)
        first = schedule.apply_command(ReconfigCommand("join", 4), 7)
        second = schedule.apply_command(ReconfigCommand("join", 5), 7)
        assert first.start_round == 7
        assert second.start_round == 8  # bumped past the collision
        assert second.committee.size == 6

    def test_bad_commands_deterministically_ignored(self):
        """A committed-but-inapplicable command must not halt consensus:
        every honest walk sees it at the same point and skips it."""
        schedule = CommitteeSchedule(Committee.of_size(4), provisioned=5)
        assert schedule.apply_command(ReconfigCommand("join", 2), 7) is None
        assert schedule.apply_command(ReconfigCommand("leave", 4), 7) is None
        # Leave that would shrink below n=4: ignored at the protocol
        # layer (config validation rejects it up front, see below).
        assert schedule.apply_command(ReconfigCommand("leave", 1), 7) is None
        # Joining an unprovisioned identity: ignored.
        assert schedule.apply_command(ReconfigCommand("join", 9), 7) is None
        assert schedule.is_static

    def test_adopt_epochs_restores_history(self):
        schedule = CommitteeSchedule(Committee.of_size(4), provisioned=6)
        schedule.apply_command(ReconfigCommand("join", 4), 6)
        schedule.apply_command(ReconfigCommand("join", 5), 11)
        snapshot = schedule.snapshot()

        fresh = CommitteeSchedule(Committee.of_size(4), provisioned=6)
        fresh.adopt_epochs(snapshot)
        assert fresh.snapshot() == snapshot
        assert fresh.size_at(11) == 6
        # Only a fresh schedule may adopt.
        with pytest.raises(ConfigError):
            fresh.adopt_epochs(snapshot)

    def test_subscribe_sees_transitions(self):
        schedule = CommitteeSchedule(Committee.of_size(4), provisioned=5)
        seen = []
        schedule.subscribe(seen.append)
        schedule.apply_command(ReconfigCommand("join", 4), 9)
        assert [e.epoch_id for e in seen] == [1]


class TestReconfigCommands:
    def test_payload_round_trip(self):
        for kind, validator in (("join", 4), ("leave", 123)):
            command = ReconfigCommand(kind, validator)
            assert ReconfigCommand.from_payload(command.encode_payload()) == command

    def test_malformed_payloads_ignored(self):
        assert ReconfigCommand.from_payload(b"") is None
        assert ReconfigCommand.from_payload(b"\x00" * 64) is None
        good = ReconfigCommand("join", 4).encode_payload()
        assert ReconfigCommand.from_payload(good[:-1]) is None
        assert ReconfigCommand.from_payload(good + b"x") is None

    def test_commands_in_blocks_scans_linearized_order(self):
        class FakeBlock:
            def __init__(self, *txs):
                self.transactions = txs

        join = Transaction(
            tx_id=1, payload=ReconfigCommand("join", 4).encode_payload()
        )
        leave = Transaction(
            tx_id=2, payload=ReconfigCommand("leave", 2).encode_payload()
        )
        noise = Transaction(tx_id=3, payload=b"\x00" * 32)
        commands = reconfig_commands_in(
            [FakeBlock(noise, join), FakeBlock(), FakeBlock(leave)]
        )
        assert commands == [
            ReconfigCommand("join", 4),
            ReconfigCommand("leave", 2),
        ]


class TestCheckpointCarriesCommittee:
    def test_epochs_in_encoding_and_content_address(self):
        base = dict(
            round=20,
            floor=4,
            next_slot=(21, 0),
            chain=GENESIS_STATE,
            sequence_length=64,
            committee_size=5,
        )
        static = Checkpoint(**base)
        epochal = Checkpoint(
            **base, epochs=((0, 0, (0, 1, 2, 3)), (1, 12, (0, 1, 2, 3, 4)))
        )
        decoded, _ = Checkpoint.decode(epochal.encode())
        assert decoded == epochal
        assert decoded.epochs == epochal.epochs
        # The committee is part of the checkpoint id.
        assert static.checkpoint_id != epochal.checkpoint_id
        other = Checkpoint(
            **base, epochs=((0, 0, (0, 1, 2, 3)), (1, 12, (0, 1, 2, 4, 5)))
        )
        assert other.checkpoint_id != epochal.checkpoint_id


class TestConfigValidation:
    def test_leave_below_minimum_committee_raises(self):
        """The edge case the BFT bound forbids: a leave that would drop
        n below 4 must be rejected up front."""
        with pytest.raises(ConfigError, match="below n=4"):
            make_epoch_config(
                num_validators=4,
                initial_committee_size=0,
                fault_schedule=(FaultEvent(2.0, 3, "leave"),),
            )

    def test_leave_below_minimum_after_join_history_raises(self):
        with pytest.raises(ConfigError, match="below n=4"):
            make_epoch_config(
                num_validators=5,
                initial_committee_size=4,
                fault_schedule=(
                    FaultEvent(1.0, 4, "join"),
                    FaultEvent(3.0, 4, "leave"),
                    FaultEvent(4.0, 3, "leave"),
                ),
            )

    def test_provisioned_validator_without_join_raises(self):
        with pytest.raises(ConfigError, match="never join"):
            make_epoch_config(fault_schedule=())

    def test_initial_committee_requires_epoch_reconfig(self):
        with pytest.raises(ConfigError, match="epoch_reconfig"):
            ExperimentConfig(num_validators=6, initial_committee_size=5)

    def test_joiner_downtime_does_not_consume_fault_budget(self):
        """Three not-yet-joined validators exceed f of the provisioned
        committee — but they are outside the active committee, so the
        config validates."""
        config = ExperimentConfig(
            protocol="mahi-mahi-5",
            num_validators=7,
            initial_committee_size=4,
            epoch_reconfig=True,
            fault_schedule=(
                FaultEvent(1.0, 4, "join"),
                FaultEvent(2.0, 5, "join"),
                FaultEvent(3.0, 6, "join"),
            ),
        )
        assert config.epoch_reconfig


class TestEpochRuns:
    def test_leaving_the_leader_slot_owner(self):
        """Leave a validator while it keeps being elected to leader
        slots: waves proposed before the activation may elect it (and
        must still decide under the old committee); waves proposed at or
        after the activation must never elect it."""
        config = make_epoch_config(
            num_validators=5,
            initial_committee_size=0,
            leaders_per_round=2,
            fault_schedule=(FaultEvent(2.0, 4, "leave"),),
            duration=12.0,
        )
        experiment = Experiment(config)
        result = experiment.run()  # asserts safety across the boundary
        observer = experiment.nodes[0]
        schedule = observer.core.schedule
        epochs = schedule.epochs()
        assert len(epochs) == 2, "the leave command must have activated"
        activation = epochs[1].start_round
        assert 4 not in epochs[1].committee.members
        committer = observer.core.committer
        deciders = committer._deciders
        highest = observer.core.store.highest_round
        elected_before = set()
        for round_number in range(1, min(activation + 10, highest - 6)):
            for decider in deciders:
                leader = decider.elect(round_number)
                if round_number >= activation:
                    # Thresholds and elections follow the active epoch:
                    # the departed validator owns no slot from the
                    # activation round on.
                    assert leader in epochs[1].committee.members
                else:
                    elected_before.add(leader)
        # The pre-activation rounds drew from the full committee — with
        # two slots per round across dozens of rounds, the leaver owned
        # some wave's leader slot (and the run still committed past it).
        assert 4 in elected_before
        assert result.blocks_committed > 0
        assert result.final_committee_size == 4
        # The leaver exited once its excluding epoch activated.
        assert experiment.nodes[4].down

    def test_join_lands_mid_checkpoint_recovery(self):
        """A crashed validator is re-syncing from a checkpoint while a
        join command commits and activates: both the recoverer and the
        joiner must converge on the same epoch schedule and commit
        sequence (asserted by run()), and both complete recovery."""
        config = make_epoch_config(
            num_validators=6,
            initial_committee_size=5,
            duration=12.0,
            fault_schedule=(
                FaultEvent(2.8, 3, "crash"),
                FaultEvent(3.2, 5, "join"),
                FaultEvent(3.4, 3, "recover"),
            ),
        )
        experiment = Experiment(config)
        result = experiment.run()
        assert result.epoch_transitions == 1
        assert result.final_committee_size == 6
        # Both the joiner and the crash-recovered validator resumed.
        assert result.recoveries == 2
        recovered_schedules = [
            experiment.nodes[v].core.schedule.snapshot() for v in (0, 3, 5)
        ]
        assert recovered_schedules[0] == recovered_schedules[1] == recovered_schedules[2]

    def test_epoch_summary_attribution_is_complete(self):
        config = make_epoch_config(duration=10.0)
        result = Experiment(config).run()
        assert result.epoch_transitions == 1
        assert [row["epoch"] for row in result.epoch_summary] == [0, 1]
        assert [row["size"] for row in result.epoch_summary] == [5, 6]
        assert result.epoch_summary[1]["commits"] > 0
        assert result.epoch_summary[1]["latency_avg_s"] > 0
