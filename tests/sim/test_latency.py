"""Tests for the WAN latency models."""

import random

import pytest

from repro.sim.latency import (
    GeoLatencyModel,
    LatencyMatrixModel,
    PAPER_REGIONS,
    UniformLatencyModel,
    WAN_PRESETS,
    wan_matrix_model,
)


class TestGeoModel:
    def test_round_robin_region_assignment(self):
        model = GeoLatencyModel(10)
        assert model.region_of(0) == "us-east-2"
        assert model.region_of(4) == "eu-south-1"
        assert model.region_of(5) == "us-east-2"

    def test_five_paper_regions(self):
        assert len(PAPER_REGIONS) == 5
        assert set(PAPER_REGIONS) == {
            "us-east-2",
            "us-west-2",
            "af-south-1",
            "ap-east-1",
            "eu-south-1",
        }

    def test_symmetric_delays(self):
        model = GeoLatencyModel(10)
        for src in range(10):
            for dst in range(10):
                assert model.base_delay(src, dst) == model.base_delay(dst, src)

    def test_intra_region_much_faster(self):
        model = GeoLatencyModel(10)
        # Validators 0 and 5 share us-east-2.
        assert model.base_delay(0, 5) < 0.001
        assert model.base_delay(0, 2) > 0.05

    def test_all_pairs_defined(self):
        model = GeoLatencyModel(50)
        for src in range(50):
            for dst in range(50):
                assert model.base_delay(src, dst) >= 0

    def test_jitter_is_small_and_positive(self):
        model = GeoLatencyModel(10)
        rng = random.Random(1)
        base = model.base_delay(0, 2)
        samples = [model.sample(0, 2, rng) for _ in range(200)]
        assert all(s > 0 for s in samples)
        assert all(abs(s - base) / base < 0.5 for s in samples)

    def test_far_pair_is_cape_town_hong_kong(self):
        model = GeoLatencyModel(10)
        delays = {
            (model.region_of(a), model.region_of(b)): model.base_delay(a, b)
            for a in range(5)
            for b in range(5)
            if a != b
        }
        worst = max(delays, key=delays.get)
        assert set(worst) == {"af-south-1", "ap-east-1"}


class TestUniformModel:
    def test_constant_delay(self):
        model = UniformLatencyModel(0.1)
        rng = random.Random(0)
        assert model.sample(0, 1, rng) == 0.1
        assert model.sample(3, 2, rng) == 0.1

    def test_self_delay_is_intra_region(self):
        model = UniformLatencyModel(0.1)
        assert model.base_delay(2, 2) < 0.001

    def test_optional_jitter(self):
        model = UniformLatencyModel(0.1, jitter_sigma=0.1)
        rng = random.Random(0)
        samples = {model.sample(0, 1, rng) for _ in range(10)}
        assert len(samples) > 1


class TestMakeSampler:
    def test_fast_path_matches_base_delay_when_no_jitter(self):
        model = UniformLatencyModel(0.1)
        sampler = model.make_sampler(random.Random(0))
        assert sampler(0, 1) == 0.1
        assert sampler(2, 2) == model.base_delay(2, 2)

    def test_jittered_sampler_stays_near_base(self):
        model = UniformLatencyModel(0.1, jitter_sigma=0.05)
        sampler = model.make_sampler(random.Random(0))
        samples = [sampler(0, 1) for _ in range(2000)]
        assert len(set(samples)) > 1
        assert all(abs(s - 0.1) / 0.1 < 0.5 for s in samples)

    def test_deterministic_for_fixed_seed(self):
        model = GeoLatencyModel(10)
        a = model.make_sampler(random.Random(7))
        b = model.make_sampler(random.Random(7))
        assert [a(0, 1) for _ in range(100)] == [b(0, 1) for _ in range(100)]

    def test_subclass_sample_override_is_honored(self):
        class ConstantModel(UniformLatencyModel):
            def sample(self, src, dst, rng):
                return 42.0

        sampler = ConstantModel(0.1, jitter_sigma=0.05).make_sampler(random.Random(0))
        assert sampler(0, 1) == 42.0


class TestLatencyMatrixModel:
    REGIONS = ("a", "b")
    MATRIX = ((0.001, 0.050), (0.050, 0.001))

    def test_round_robin_default_assignment(self):
        model = LatencyMatrixModel(self.REGIONS, self.MATRIX, num_validators=4)
        assert [model.region_of(i) for i in range(4)] == ["a", "b", "a", "b"]
        assert model.base_delay(0, 2) == 0.001
        assert model.base_delay(0, 1) == 0.050

    def test_explicit_assignment(self):
        model = LatencyMatrixModel(
            self.REGIONS, self.MATRIX, num_validators=3, assignment=(1, 1, 0)
        )
        assert model.region_of(0) == "b"
        assert model.base_delay(0, 1) == 0.001
        assert model.base_delay(1, 2) == 0.050

    def test_rejects_non_square_matrix(self):
        with pytest.raises(ValueError):
            LatencyMatrixModel(self.REGIONS, ((0.001, 0.05),), num_validators=2)

    def test_rejects_asymmetric_matrix(self):
        with pytest.raises(ValueError):
            LatencyMatrixModel(
                self.REGIONS, ((0.001, 0.050), (0.060, 0.001)), num_validators=2
            )

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            LatencyMatrixModel(
                self.REGIONS, ((0.001, -0.1), (-0.1, 0.001)), num_validators=2
            )

    def test_rejects_bad_assignment(self):
        with pytest.raises(ValueError):
            LatencyMatrixModel(
                self.REGIONS, self.MATRIX, num_validators=3, assignment=(0, 1)
            )
        with pytest.raises(ValueError):
            LatencyMatrixModel(
                self.REGIONS, self.MATRIX, num_validators=2, assignment=(0, 2)
            )


class TestWanPresets:
    def test_paper_preset_matches_geo_model(self):
        """``paper-5`` is the paper's deployment expressed as an explicit
        matrix: it must agree with GeoLatencyModel on every pair."""
        matrix = wan_matrix_model("paper-5", 10)
        geo = GeoLatencyModel(10)
        for src in range(10):
            for dst in range(10):
                if geo.region_of(src) != geo.region_of(dst):
                    assert matrix.base_delay(src, dst) == geo.base_delay(src, dst)

    def test_all_presets_are_valid_matrices(self):
        for name in WAN_PRESETS:
            model = wan_matrix_model(name, 12)
            for src in range(12):
                for dst in range(12):
                    assert model.base_delay(src, dst) == model.base_delay(dst, src)
                    assert model.base_delay(src, dst) >= 0

    def test_metro_is_uniformly_faster_than_wan(self):
        metro = wan_matrix_model("metro-3", 6)
        wan = wan_matrix_model("global-10", 6)
        worst_metro = max(
            metro.base_delay(a, b) for a in range(6) for b in range(6) if a != b
        )
        best_wan_cross = min(
            wan.base_delay(a, b)
            for a in range(6)
            for b in range(6)
            if a != b and wan.region_of(a) != wan.region_of(b)
        )
        assert worst_metro < best_wan_cross

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown WAN matrix"):
            wan_matrix_model("mars-2", 4)
