"""Regression tests pinning adversary-scheduler target selection.

``AsyncAdversaryScheduler`` draws its per-window target set from a pure
function of the window epoch, so a sweep's adversarial delay pattern is
reproducible from the config alone; ``LeaderDosScheduler`` must delay
exactly the elected leader slots of each propose round — including
across committee resizes, where "the elected leader" is defined by the
round's *epoch* committee.  These pins keep both derivations from
drifting silently (a change invalidates every cached adversary sweep
point and must be deliberate).
"""

import random
from types import SimpleNamespace

from repro.sim.network import AsyncAdversaryScheduler, LeaderDosScheduler, Message


def _message(src: int, kind: str = "block", round_number: int = 0, author: int | None = None):
    payload = SimpleNamespace(round=round_number, author=src if author is None else author)
    return Message(src=src, dst=(src + 1) % 10, kind=kind, payload=payload, size=100)


class TestAsyncAdversaryPinning:
    """The rotating-window draw is deterministic and pinned."""

    def test_pinned_window_targets(self):
        """The literal target sets for the first three windows at
        n=10, k=3 (the bench_fig4 adversary shape).  A drift here means
        every cached adversary point silently changed meaning."""
        scheduler = AsyncAdversaryScheduler(
            committee_size=10, targets_per_window=3, delay=0.5, window=1.0
        )
        assert sorted(scheduler._targets(0.5)) == [2, 5, 7]
        assert sorted(scheduler._targets(1.5)) == [0, 1, 6]
        assert sorted(scheduler._targets(2.5)) == [1, 3, 5]

    def test_independent_instances_agree(self):
        """Two schedulers (e.g. a run and its replay) delay the same
        messages at the same times."""
        make = lambda: AsyncAdversaryScheduler(  # noqa: E731
            committee_size=10, targets_per_window=3, delay=0.5, window=1.0
        )
        a, b = make(), make()
        rng_a, rng_b = random.Random(0), random.Random(0)
        times = [0.1, 0.9, 1.1, 2.7, 5.3, 11.2]
        for now in times:
            for src in range(10):
                message = _message(src)
                assert a.extra_delay(message, now, rng_a) == b.extra_delay(
                    message, now, rng_b
                )

    def test_window_length_scales_epochs(self):
        """Halving the window doubles the rotation rate but the epoch-e
        draw itself is window-independent (it hashes the epoch index)."""
        fast = AsyncAdversaryScheduler(10, 3, 0.5, window=0.5)
        slow = AsyncAdversaryScheduler(10, 3, 0.5, window=1.0)
        assert fast._targets(0.6) == slow._targets(1.2)  # both epoch 1


class TestLeaderDosTargeting:
    def test_targets_only_configured_slots(self):
        scheduler = LeaderDosScheduler(lambda r: (4, 2, 7), delay=1.0, slots=2)
        assert scheduler.targets(3) == (4, 2)

    def test_delays_only_the_leaders_own_blocks(self):
        """The DoS hits a targeted leader's block/cert traffic for its
        round and nothing else — not relays of the leader's block by
        other validators, not other kinds, not other rounds."""
        leaders = {5: (3,), 6: (8,)}
        scheduler = LeaderDosScheduler(
            lambda r: leaders.get(r, ()), delay=1.0, slots=1
        )
        rng = random.Random(0)
        # The leader's own block for its leader round: delayed.
        assert scheduler.extra_delay(_message(3, "block", 5), 0.0, rng) == 1.0
        assert scheduler.extra_delay(_message(8, "cert", 6), 0.0, rng) == 1.0
        # Another validator relaying the leader's block: untouched.
        assert scheduler.extra_delay(_message(1, "block", 5, author=3), 0.0, rng) == 0.0
        # The leader's traffic for a round it does not lead: untouched.
        assert scheduler.extra_delay(_message(3, "block", 6), 0.0, rng) == 0.0
        # Non-block/cert traffic from the leader: untouched.
        assert scheduler.extra_delay(_message(3, "ack", 5), 0.0, rng) == 0.0
        assert scheduler.extra_delay(_message(3, "fetch_req", 5), 0.0, rng) == 0.0

    def test_round_cache_refreshes_on_round_change(self):
        calls = []

        def resolver(round_number):
            calls.append(round_number)
            return (round_number % 10,)

        scheduler = LeaderDosScheduler(resolver, delay=1.0, slots=1)
        scheduler.targets(4)
        scheduler.targets(4)
        assert calls == [4]  # cached within a round
        scheduler.targets(5)
        assert calls == [4, 5]


class TestLeaderDosUnderEpochResize:
    def test_targets_follow_the_active_epoch_committee(self):
        """With epoch reconfiguration on, the resolver elects leaders
        from the committee of the *round's* epoch: once the committee
        grows, joined validators become targetable and the election
        modulus follows the new size."""
        from repro.sim.faults import FaultEvent
        from repro.sim.runner import Experiment, ExperimentConfig

        duration = 8.0
        config = ExperimentConfig(
            protocol="mahi-mahi-5",
            num_validators=7,
            initial_committee_size=4,
            epoch_reconfig=True,
            leaders_per_round=1,
            leader_dos_slots=1,
            leader_dos_delay=0.05,  # mild: the run must still commit
            load_tps=1_000.0,
            duration=duration,
            warmup=2.0,
            gc_depth=64,
            recover_mode="checkpoint",
            checkpoint_interval=2,
            fault_schedule=(
                FaultEvent(time=0.1 * duration, validator=4, kind="join"),
                FaultEvent(time=0.2 * duration, validator=5, kind="join"),
                FaultEvent(time=0.3 * duration, validator=6, kind="join"),
            ),
            seed=7,
        )
        experiment = Experiment(config)
        result = experiment.run()
        assert result.epoch_transitions >= 1
        schedule = experiment.nodes[0].core.schedule
        scheduler = experiment._make_scheduler()
        coin = experiment._coin
        wave_length = 5
        grown_round = schedule.epochs()[-1].start_round + 1
        assert schedule.committee_at(grown_round).size > 4
        seen_sizes = set()
        for propose_round in range(1, grown_round + 1):
            committee = schedule.committee_at(propose_round)
            seen_sizes.add(committee.size)
            expected = committee.leader_for(
                coin.peek(propose_round + wave_length - 1), 0
            )
            assert scheduler.targets(propose_round) == (expected,)
            assert expected in committee.members
        # The walk genuinely crossed a resize boundary.
        assert len(seen_sizes) >= 2
