"""Tests for metrics collection and the open-loop client."""

import math

import pytest

from repro.sim.client import OpenLoopClient, reset_tx_ids
from repro.sim.events import EventLoop
from repro.sim.metrics import ExperimentMetrics, LatencySummary


class TestMetrics:
    def test_latency_recorded_per_transaction(self):
        metrics = ExperimentMetrics()
        metrics.record_submission(1, 0.0)
        metrics.record_commit(1, 0.8)
        summary = metrics.latency_summary()
        assert summary.avg == pytest.approx(0.8)
        assert summary.count == 1

    def test_warmup_excluded(self):
        metrics = ExperimentMetrics(warmup=5.0)
        metrics.record_submission(1, 1.0)  # during warmup
        metrics.record_submission(2, 6.0)
        metrics.record_commit(1, 2.0)
        metrics.record_commit(2, 6.5)
        summary = metrics.latency_summary()
        assert summary.count == 1
        assert summary.avg == pytest.approx(0.5)

    def test_duplicate_commits_counted_once(self):
        metrics = ExperimentMetrics()
        metrics.record_submission(1, 0.0)
        metrics.record_commit(1, 0.5)
        metrics.record_commit(1, 0.9)
        assert metrics.committed_unique == 1
        assert metrics.duplicate_commits == 1

    def test_weighted_latency_and_throughput(self):
        metrics = ExperimentMetrics()
        metrics.record_submission(1, 0.0, weight=10.0)
        metrics.record_submission(2, 0.0, weight=30.0)
        metrics.record_commit(1, 1.0)
        metrics.record_commit(2, 2.0)
        summary = metrics.latency_summary()
        assert summary.avg == pytest.approx((1.0 * 10 + 2.0 * 30) / 40)
        assert metrics.throughput(duration=10.0) == pytest.approx(4.0)

    def test_percentiles(self):
        metrics = ExperimentMetrics()
        for i in range(100):
            metrics.record_submission(i, 0.0)
            metrics.record_commit(i, (i + 1) / 100)
        summary = metrics.latency_summary()
        assert summary.p50 == pytest.approx(0.50, abs=0.02)
        assert summary.p90 == pytest.approx(0.90, abs=0.02)
        assert summary.p99 == pytest.approx(0.99, abs=0.02)
        assert summary.max == pytest.approx(1.0)

    def test_empty_summary_is_nan(self):
        summary = ExperimentMetrics().latency_summary()
        assert math.isnan(summary.avg)
        assert summary.count == 0

    def test_pending_counts_uncommitted(self):
        metrics = ExperimentMetrics()
        metrics.record_submission(1, 0.0)
        metrics.record_submission(2, 0.0)
        metrics.record_commit(1, 1.0)
        assert metrics.pending == 1


class TestOpenLoopClient:
    def test_average_rate(self):
        reset_tx_ids()
        loop = EventLoop()
        received = []
        client = OpenLoopClient(loop, received.append, rate=100.0, seed=1)
        client.start()
        loop.run_until(10.0)
        assert client.submitted == len(received)
        assert 800 <= client.submitted <= 1200  # ~1000 +- Poisson noise

    def test_stop_at(self):
        reset_tx_ids()
        loop = EventLoop()
        received = []
        client = OpenLoopClient(loop, received.append, rate=100.0, stop_at=2.0, seed=1)
        client.start()
        loop.run_until(10.0)
        assert all(tx.submitted_at <= 2.0 for tx in received)

    def test_zero_rate_never_submits(self):
        loop = EventLoop()
        client = OpenLoopClient(loop, lambda tx: None, rate=0.0)
        client.start()
        loop.run_until(5.0)
        assert client.submitted == 0

    def test_submission_hook_sees_weight(self):
        reset_tx_ids()
        loop = EventLoop()
        seen = []
        client = OpenLoopClient(
            loop,
            lambda tx: None,
            rate=10.0,
            weight=50.0,
            on_submission=lambda tx_id, t, w: seen.append((tx_id, w)),
            seed=2,
        )
        client.start()
        loop.run_until(1.0)
        assert seen and all(w == 50.0 for _, w in seen)

    def test_tx_ids_unique_across_clients(self):
        reset_tx_ids()
        loop = EventLoop()
        received = []
        for seed in range(3):
            OpenLoopClient(loop, received.append, rate=50.0, seed=seed).start()
        loop.run_until(2.0)
        ids = [tx.tx_id for tx in received]
        assert len(ids) == len(set(ids))
