"""Tests for metrics collection and the open-loop client."""

import math

import pytest

from repro.sim.client import OpenLoopClient, reset_tx_ids
from repro.sim.events import EventLoop
from repro.sim.metrics import ExperimentMetrics


class TestMetrics:
    def test_latency_recorded_per_transaction(self):
        metrics = ExperimentMetrics()
        metrics.record_submission(1, 0.0)
        metrics.record_commit(1, 0.8)
        summary = metrics.latency_summary()
        assert summary.avg == pytest.approx(0.8)
        assert summary.count == 1

    def test_warmup_excluded(self):
        metrics = ExperimentMetrics(warmup=5.0)
        metrics.record_submission(1, 1.0)  # during warmup
        metrics.record_submission(2, 6.0)
        metrics.record_commit(1, 2.0)
        metrics.record_commit(2, 6.5)
        summary = metrics.latency_summary()
        assert summary.count == 1
        assert summary.avg == pytest.approx(0.5)

    def test_duplicate_commits_counted_once(self):
        metrics = ExperimentMetrics()
        metrics.record_submission(1, 0.0)
        metrics.record_commit(1, 0.5)
        metrics.record_commit(1, 0.9)
        assert metrics.committed_unique == 1
        assert metrics.duplicate_commits == 1

    def test_weighted_latency_and_throughput(self):
        metrics = ExperimentMetrics()
        metrics.record_submission(1, 0.0, weight=10.0)
        metrics.record_submission(2, 0.0, weight=30.0)
        metrics.record_commit(1, 1.0)
        metrics.record_commit(2, 2.0)
        summary = metrics.latency_summary()
        assert summary.avg == pytest.approx((1.0 * 10 + 2.0 * 30) / 40)
        assert metrics.throughput(duration=10.0) == pytest.approx(4.0)

    def test_percentiles(self):
        metrics = ExperimentMetrics()
        for i in range(100):
            metrics.record_submission(i, 0.0)
            metrics.record_commit(i, (i + 1) / 100)
        summary = metrics.latency_summary()
        assert summary.p50 == pytest.approx(0.50, abs=0.02)
        assert summary.p90 == pytest.approx(0.90, abs=0.02)
        assert summary.p99 == pytest.approx(0.99, abs=0.02)
        assert summary.max == pytest.approx(1.0)

    def test_empty_summary_is_nan(self):
        summary = ExperimentMetrics().latency_summary()
        assert math.isnan(summary.avg)
        assert summary.count == 0

    def test_pending_counts_uncommitted(self):
        metrics = ExperimentMetrics()
        metrics.record_submission(1, 0.0)
        metrics.record_submission(2, 0.0)
        metrics.record_commit(1, 1.0)
        assert metrics.pending == 1


class TestWeightedPercentile:
    """Edge cases of the weighted-percentile kernel behind
    :meth:`ExperimentMetrics.latency_summary`."""

    @staticmethod
    def pct(ordered, q):
        total = sum(w for _, w in ordered)
        return ExperimentMetrics._weighted_percentile(ordered, total, q)

    def test_single_sample_is_every_percentile(self):
        sample = [(0.7, 3.0)]
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert self.pct(sample, q) == 0.7

    def test_equal_weights_match_rank_statistics(self):
        ordered = [(float(i), 1.0) for i in range(1, 11)]
        assert self.pct(ordered, 0.50) == 5.0
        assert self.pct(ordered, 0.90) == 9.0
        assert self.pct(ordered, 1.0) == 10.0

    def test_skewed_weights_shift_the_median(self):
        # One heavy slow batch outweighs many light fast ones: the
        # weighted p50 lands on the heavy sample, the unweighted
        # rank-median would not.
        ordered = [(0.1, 1.0), (0.2, 1.0), (0.3, 1.0), (5.0, 10.0)]
        assert self.pct(ordered, 0.50) == 5.0
        # With the weights flipped, the fast mass dominates instead.
        flipped = [(0.1, 10.0), (0.2, 1.0), (0.3, 1.0), (5.0, 1.0)]
        assert self.pct(flipped, 0.50) == 0.1

    def test_percentiles_monotonic_under_random_weights(self):
        import random

        rng = random.Random(5)
        metrics = ExperimentMetrics()
        for i in range(200):
            metrics.record_submission(i, 0.0, weight=rng.uniform(0.1, 20.0))
            metrics.record_commit(i, rng.expovariate(1.0) + 0.01)
        s = metrics.latency_summary()
        assert s.p50 <= s.p90 <= s.p99 <= s.max

    def test_quantile_past_total_weight_clamps_to_max(self):
        # Floating-point weight accumulation can leave the cumulative
        # sum epsilon short of q * total; the kernel must still answer.
        ordered = [(1.0, 0.1), (2.0, 0.2)]
        assert ExperimentMetrics._weighted_percentile(ordered, 0.3 + 1e-9, 1.0) == 2.0


class TestOpenLoopClient:
    def test_average_rate(self):
        reset_tx_ids()
        loop = EventLoop()
        received = []
        client = OpenLoopClient(loop, received.append, rate=100.0, seed=1)
        client.start()
        loop.run_until(10.0)
        assert client.submitted == len(received)
        assert 800 <= client.submitted <= 1200  # ~1000 +- Poisson noise

    def test_stop_at(self):
        reset_tx_ids()
        loop = EventLoop()
        received = []
        client = OpenLoopClient(loop, received.append, rate=100.0, stop_at=2.0, seed=1)
        client.start()
        loop.run_until(10.0)
        assert all(tx.submitted_at <= 2.0 for tx in received)

    def test_zero_rate_never_submits(self):
        loop = EventLoop()
        client = OpenLoopClient(loop, lambda tx: None, rate=0.0)
        client.start()
        loop.run_until(5.0)
        assert client.submitted == 0

    def test_submission_hook_sees_weight(self):
        reset_tx_ids()
        loop = EventLoop()
        seen = []
        client = OpenLoopClient(
            loop,
            lambda tx: None,
            rate=10.0,
            weight=50.0,
            on_submission=lambda tx_id, t, w: seen.append((tx_id, w)),
            seed=2,
        )
        client.start()
        loop.run_until(1.0)
        assert seen and all(w == 50.0 for _, w in seen)

    def test_tx_ids_unique_across_clients(self):
        reset_tx_ids()
        loop = EventLoop()
        received = []
        for seed in range(3):
            OpenLoopClient(loop, received.append, rate=50.0, seed=seed).start()
        loop.run_until(2.0)
        ids = [tx.tx_id for tx in received]
        assert len(ids) == len(set(ids))

    def test_structured_seeds_do_not_collide(self):
        """Regression: the harness derives client seeds as
        (master_seed, authority) tuples.  The old arithmetic derivation
        seed * 1000 + authority collides for e.g. (1, 1500) and
        (2, 500); the structured form must not."""

        def arrivals(seed):
            reset_tx_ids()
            loop = EventLoop()
            received = []
            OpenLoopClient(loop, received.append, rate=100.0, seed=seed).start()
            loop.run_until(1.0)
            return [tx.submitted_at for tx in received]

        assert 1 * 1000 + 1500 == 2 * 1000 + 500  # the old collision
        assert arrivals((1, 1500)) != arrivals((2, 500))
        # And identical structured seeds still replay identically.
        assert arrivals((1, 1500)) == arrivals((1, 1500))

    def test_tx_size_mix_samples_hints(self):
        reset_tx_ids()
        loop = EventLoop()
        received = []
        client = OpenLoopClient(
            loop,
            received.append,
            rate=500.0,
            seed=3,
            tx_size_mix=((128, 0.8), (4096, 0.2)),
        )
        client.start()
        loop.run_until(2.0)
        sizes = {tx.size_hint for tx in received}
        assert sizes == {128, 4096}
        small = sum(1 for tx in received if tx.size_hint == 128)
        assert 0.6 < small / len(received) < 0.95  # ~80%

    def test_uniform_clients_leave_hint_unset(self):
        reset_tx_ids()
        loop = EventLoop()
        received = []
        OpenLoopClient(loop, received.append, rate=100.0, seed=3).start()
        loop.run_until(1.0)
        assert received and all(tx.size_hint is None for tx in received)


class TestRecoveryMetrics:
    def test_recovery_summary(self):
        metrics = ExperimentMetrics()
        assert metrics.recovery_summary() == (0, None, None)
        metrics.record_recovery(3, recovered_at=4.0, resumed_at=4.5)
        metrics.record_recovery(4, recovered_at=4.0, resumed_at=5.5)
        count, avg, worst = metrics.recovery_summary()
        assert count == 2
        assert avg == pytest.approx(1.0)
        assert worst == pytest.approx(1.5)

    def test_availability_helper(self):
        from repro.sim.metrics import availability

        assert availability(0.0, 10, 30.0) == 1.0
        assert availability(30.0, 10, 30.0) == pytest.approx(0.9)
        assert availability(1e9, 10, 30.0) == 0.0  # clamped
        assert availability(5.0, 10, 0.0) == 1.0  # degenerate duration
