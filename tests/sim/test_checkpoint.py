"""End-to-end tests for the checkpoint & state-transfer subsystem and
WAL-backed warm restarts (:mod:`repro.sim.checkpoint`)."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.runtime.wal import WriteAheadLog
from repro.sim.checkpoint import CheckpointVotes, WalReplay, replay_cost, replay_wal
from repro.sim.faults import FaultEvent
from repro.sim.node import CpuConfig
from repro.sim.runner import Experiment, ExperimentConfig
from tests.statesync.test_checkpoint import make_checkpoint


def recovery_config(mode, **overrides):
    defaults = dict(
        protocol="mahi-mahi-5",
        num_validators=10,
        load_tps=2_000,
        duration=2.0,
        warmup=0.5,
        gc_depth=0,
        recover_mode=mode,
        checkpoint_interval=2 if mode == "checkpoint" else 0,
        sync_chunk_blocks=24,
        fault_schedule=(
            FaultEvent(time=1.2, validator=9, kind="crash"),
            FaultEvent(time=1.4, validator=9, kind="recover"),
        ),
        seed=7,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestConfigValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(recover_mode="lukewarm")

    def test_checkpoint_mode_needs_interval(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(recover_mode="checkpoint")

    def test_interval_beyond_gc_depth_rejected(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(gc_depth=4, checkpoint_interval=8)

    def test_chunk_must_be_positive(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(sync_chunk_blocks=0)


class TestWarmRestart:
    def test_warm_beats_cold_on_same_schedule(self):
        cold = Experiment(recovery_config("cold")).run()
        warm = Experiment(recovery_config("warm")).run()
        assert cold.recoveries == warm.recoveries == 1
        assert warm.recovery_time_s < cold.recovery_time_s
        assert cold.recovery_time_by_mode == {"cold": cold.recovery_time_s}
        assert warm.recovery_time_by_mode == {"warm": warm.recovery_time_s}

    def test_warm_restart_with_gc_enabled(self):
        result = Experiment(
            recovery_config("warm", gc_depth=20, sync_chunk_blocks=4096)
        ).run()
        assert result.recoveries == 1
        assert result.recovery_time_s is not None
        assert result.recovery_time_by_mode == {"warm": result.recovery_time_s}

    def test_warm_without_wal_history_reports_cold(self):
        """A joining validator in warm mode has no WAL to replay: the
        restart degenerates to (and is reported as) a cold one."""
        result = Experiment(
            recovery_config(
                "warm",
                fault_schedule=(
                    FaultEvent(time=0.4, validator=9, kind="join"),
                ),
            )
        ).run()
        assert result.recoveries == 1
        assert result.recovery_time_by_mode == {"cold": result.recovery_time_s}


class TestCheckpointRecovery:
    def test_adopt_suffix_fetch_resume_with_gc(self):
        """The acceptance path: crash -> checkpoint adoption (2f+1
        matching responses) -> suffix fetch -> resumed proposing, with
        garbage collection on and safety asserted over the recovered
        validator (run() checks the chain-aligned suffix)."""
        result = Experiment(
            recovery_config("checkpoint", gc_depth=20, sync_chunk_blocks=4096)
        ).run()
        assert result.recoveries == 1
        assert result.checkpoint_adoptions == 1
        assert result.checkpoints_captured > 0
        assert result.recovery_time_by_mode == {"checkpoint": result.recovery_time_s}

    def test_adoption_bounds_resync_past_pruned_history(self):
        """At 16 simulated seconds with gc_depth=20 the peers have
        pruned the early rounds; checkpoint recovery still completes
        because only the suffix above the adopted floor is fetched."""
        result = Experiment(
            recovery_config(
                "checkpoint",
                duration=16.0,
                warmup=4.0,
                gc_depth=20,
                sync_chunk_blocks=4096,
                fault_schedule=(
                    FaultEvent(time=9.6, validator=9, kind="crash"),
                    FaultEvent(time=11.2, validator=9, kind="recover"),
                ),
            )
        ).run()
        assert result.recoveries == 1
        assert result.checkpoint_adoptions == 1

    def test_cold_restart_past_gc_horizon_raises(self):
        """The former silent livelock: a cold restart that needs pruned
        history now fails with a clear diagnostic."""
        config = recovery_config(
            "cold",
            duration=16.0,
            warmup=4.0,
            gc_depth=20,
            sync_chunk_blocks=4096,
            fault_schedule=(
                FaultEvent(time=9.6, validator=9, kind="crash"),
                FaultEvent(time=11.2, validator=9, kind="recover"),
            ),
        )
        with pytest.raises(SimulationError, match="garbage-collection horizon"):
            Experiment(config).run()

    def test_certified_checkpoint_recovery(self):
        """Tusk's certified DAG recovers through the same adoption path
        (its 2-round waves finalize — and hence capture — later, so the
        run is a little longer than the uncertified ones)."""
        result = Experiment(
            recovery_config(
                "checkpoint",
                protocol="tusk",
                duration=4.0,
                warmup=1.0,
                gc_depth=64,
                sync_chunk_blocks=4096,
                fault_schedule=(
                    FaultEvent(time=2.0, validator=9, kind="crash"),
                    FaultEvent(time=2.4, validator=9, kind="recover"),
                ),
            )
        ).run()
        assert result.checkpoint_adoptions == 1
        assert result.recoveries == 1

    def test_checkpoints_identical_across_validators(self):
        config = recovery_config("checkpoint", gc_depth=20, sync_chunk_blocks=4096)
        experiment = Experiment(config)
        experiment.run()  # assert_safety cross-checks ids per round
        by_round = {}
        for node in experiment.nodes:
            for checkpoint in node.core.committer.ledger.checkpoints:
                by_round.setdefault(checkpoint.round, set()).add(
                    checkpoint.checkpoint_id
                )
        assert by_round, "no checkpoints captured"
        assert all(len(ids) == 1 for ids in by_round.values())


class TestCheckpointVotes:
    def test_quorum_and_first_responder_order(self):
        votes = CheckpointVotes(quorum=3)
        checkpoint = make_checkpoint()
        assert votes.add(5, (checkpoint,)) is None
        assert votes.add(2, (checkpoint,)) is None
        assert votes.add(8, (checkpoint,)) == checkpoint
        assert votes.attesters(checkpoint) == (5, 2, 8)
        votes.clear()
        assert votes.add(1, (checkpoint,)) is None


class TestWalReplayHelpers:
    def test_replay_cost_scales_with_blocks(self):
        cpu = CpuConfig()
        replay = WalReplay(blocks=100, transactions=500, own_top_round=9, commit_round=5)
        cost = replay_cost(replay, cpu, tx_weight=1.0)
        assert cost > 0
        assert cost < cpu.block_base_cost * 100 + cpu.tx_consensus_cost * 500
        assert replay_cost(replay, None, 1.0) == 0.0
        empty = WalReplay(blocks=0, transactions=0, own_top_round=0, commit_round=-1)
        assert replay_cost(empty, cpu, 1.0) == 0.0

    def test_replay_restores_round_floor(self, tmp_path):
        """Replaying a WAL with own blocks floors the proposal round —
        the anti-equivocation guarantee a warm restart gets for free."""
        from tests.statesync.test_checkpoint import drive_rounds, make_core

        cores = [make_core(i) for i in range(4)]
        drive_rounds(cores, 6)
        path = tmp_path / "own.wal"
        with WriteAheadLog(path) as wal:
            for block in cores[0].store:
                if block.round == 0:
                    continue
                if block.author == 0:
                    wal.append_own_block(block)
                else:
                    wal.append_peer_block(block)
        fresh = make_core(0)
        replay = replay_wal(fresh, path)
        assert replay.blocks == len(cores[0].store) - 4  # genesis excluded
        assert replay.own_top_round == cores[0].round
        assert fresh.round >= cores[0].round
        # The restored own-last reference leads the next proposal.
        assert fresh._own_last_ref.author == 0
        assert fresh._own_last_ref.round == cores[0].round
