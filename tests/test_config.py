"""Tests for :mod:`repro.config`."""

import pytest

from repro.config import MAHI_MAHI_4, MAHI_MAHI_5, ProtocolConfig
from repro.errors import ConfigError


class TestProtocolConfig:
    def test_defaults_match_paper_evaluation(self):
        config = ProtocolConfig()
        assert config.wave_length == 5
        assert config.leaders_per_round == 2

    def test_paper_presets(self):
        assert MAHI_MAHI_5.wave_length == 5
        assert MAHI_MAHI_4.wave_length == 4
        assert MAHI_MAHI_5.leaders_per_round == 2

    @pytest.mark.parametrize("wave_length", [3, 4, 5, 8, 16])
    def test_valid_wave_lengths(self, wave_length):
        assert ProtocolConfig(wave_length=wave_length).wave_length == wave_length

    @pytest.mark.parametrize("wave_length", [0, 1, 2, 17, -5])
    def test_invalid_wave_lengths_rejected(self, wave_length):
        with pytest.raises(ConfigError):
            ProtocolConfig(wave_length=wave_length)

    def test_liveness_property_per_appendix_c(self):
        """w=3 is safe but not live (Appendix C.3 note); w>=4 is live."""
        assert not ProtocolConfig(wave_length=3).is_live
        assert ProtocolConfig(wave_length=4).is_live
        assert ProtocolConfig(wave_length=5).is_live

    def test_boost_round_count(self):
        assert ProtocolConfig(wave_length=5).boost_rounds == 2
        assert ProtocolConfig(wave_length=4).boost_rounds == 1
        assert ProtocolConfig(wave_length=3).boost_rounds == 0

    def test_zero_leaders_rejected(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(leaders_per_round=0)

    def test_negative_gc_depth_rejected(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(garbage_collection_depth=-1)

    def test_zero_block_transactions_rejected(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(max_block_transactions=0)

    def test_with_wave_length_returns_modified_copy(self):
        base = ProtocolConfig(wave_length=5, leaders_per_round=3)
        modified = base.with_wave_length(4)
        assert modified.wave_length == 4
        assert modified.leaders_per_round == 3
        assert base.wave_length == 5

    def test_with_leaders_returns_modified_copy(self):
        base = ProtocolConfig(wave_length=4)
        assert base.with_leaders(3).leaders_per_round == 3
        assert base.leaders_per_round == 2

    def test_config_is_hashable_and_frozen(self):
        config = ProtocolConfig()
        with pytest.raises(AttributeError):
            config.wave_length = 4  # type: ignore[misc]
        assert hash(config) == hash(ProtocolConfig())
