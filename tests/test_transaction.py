"""Tests for :mod:`repro.transaction`."""

import pytest

from repro.errors import ReproError
from repro.transaction import (
    DEFAULT_TX_SIZE,
    Transaction,
    decode_transactions,
    encode_transactions,
)


class TestRoundtrip:
    def test_encode_decode(self):
        tx = Transaction(tx_id=42, submitted_at=1.5, payload=b"hello world")
        decoded, offset = Transaction.decode(tx.encode())
        assert decoded == tx
        assert offset == len(tx.encode())

    def test_empty_payload(self):
        tx = Transaction(tx_id=1)
        decoded, _ = Transaction.decode(tx.encode())
        assert decoded.payload == b""

    def test_batch_roundtrip(self):
        batch = tuple(Transaction.dummy(i, submitted_at=i / 10) for i in range(25))
        decoded, offset = decode_transactions(encode_transactions(batch))
        assert decoded == batch
        assert offset == len(encode_transactions(batch))

    def test_empty_batch(self):
        decoded, _ = decode_transactions(encode_transactions(()))
        assert decoded == ()

    def test_decode_at_offset(self):
        tx = Transaction.dummy(7)
        data = b"\xff" * 10 + tx.encode()
        decoded, _ = Transaction.decode(data, offset=10)
        assert decoded == tx


class TestErrors:
    def test_truncated_header(self):
        with pytest.raises(ReproError):
            Transaction.decode(b"\x01\x02")

    def test_truncated_payload(self):
        data = Transaction(tx_id=1, payload=b"abcdef").encode()
        with pytest.raises(ReproError):
            Transaction.decode(data[:-3])

    def test_truncated_batch_count(self):
        with pytest.raises(ReproError):
            decode_transactions(b"\x01")


class TestDummy:
    def test_dummy_matches_paper_size(self):
        """Benchmark transactions are 512 bytes (Section 5.1)."""
        assert Transaction.dummy(1).size == DEFAULT_TX_SIZE == 512

    def test_dummy_custom_size(self):
        assert Transaction.dummy(1, size=100).size == 100

    def test_dummy_below_header_size_clamps(self):
        tx = Transaction.dummy(1, size=1)
        assert tx.payload == b""

    def test_size_accounts_header_and_payload(self):
        tx = Transaction(tx_id=1, payload=b"x" * 10)
        assert tx.size == len(tx.encode())
