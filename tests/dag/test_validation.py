"""Tests for block validity (Section 2.3's three conditions)."""

import pytest

from repro.block import Block, make_genesis
from repro.committee import Committee
from repro.crypto.coin import CoinShare, FastCoin
from repro.crypto.signing import NullSignatureScheme, generate_keys
from repro.dag.validation import BlockVerifier
from repro.errors import BlockValidationError


@pytest.fixture
def env():
    scheme = NullSignatureScheme()
    keys = generate_keys(scheme, 4)
    committee = Committee.of_size(4, public_keys=[k.public_key for k in keys])
    coin = FastCoin(seed=b"v", n=4, threshold=committee.quorum_threshold)
    genesis = make_genesis(4)
    return scheme, keys, committee, coin, genesis


def make_block(env, *, author=0, round_number=1, parents=None, share=True, sign=True, salt=b""):
    scheme, keys, committee, coin, genesis = env
    parents = tuple(b.reference for b in genesis) if parents is None else parents
    block = Block(
        author=author,
        round=round_number,
        parents=parents,
        coin_share=coin.share(author, round_number) if share else None,
        salt=salt,
    )
    if sign:
        block = Block(
            author=block.author,
            round=block.round,
            parents=block.parents,
            coin_share=block.coin_share,
            salt=block.salt,
            signature=scheme.sign(keys[author].private_key, block.signable_bytes()),
        )
    return block


class TestStructure:
    def test_valid_block_passes(self, env):
        _, _, committee, coin, _ = env
        verifier = BlockVerifier(committee, NullSignatureScheme(), coin)
        verifier.verify(make_block(env))

    def test_unknown_author_rejected(self, env):
        _, _, committee, _, _ = env
        verifier = BlockVerifier(committee)
        block = make_block(env, author=0)
        bogus = Block(author=9, round=1, parents=block.parents)
        with pytest.raises(BlockValidationError, match="not in committee"):
            verifier.verify(bogus)

    def test_genesis_with_parents_rejected(self, env):
        _, _, committee, _, genesis = env
        verifier = BlockVerifier(committee)
        bogus = Block(author=0, round=0, parents=(genesis[1].reference,))
        with pytest.raises(BlockValidationError, match="genesis"):
            verifier.verify(bogus)

    def test_insufficient_previous_round_parents_rejected(self, env):
        _, _, committee, _, genesis = env
        verifier = BlockVerifier(committee)
        block = make_block(env, parents=tuple(b.reference for b in genesis[:2]), sign=False)
        with pytest.raises(BlockValidationError, match="needs 3"):
            verifier.verify_structure(block)

    def test_parent_from_same_round_rejected(self, env):
        _, _, committee, _, genesis = env
        verifier = BlockVerifier(committee)
        sibling = make_block(env, author=1, sign=False)
        parents = tuple(b.reference for b in genesis) + (sibling.reference,)
        block = make_block(env, parents=parents, sign=False)
        with pytest.raises(BlockValidationError, match="earlier round"):
            verifier.verify_structure(block)

    def test_duplicate_parent_rejected(self, env):
        _, _, committee, _, genesis = env
        verifier = BlockVerifier(committee)
        parents = tuple(b.reference for b in genesis) + (genesis[0].reference,)
        block = make_block(env, parents=parents, sign=False)
        with pytest.raises(BlockValidationError, match="duplicate"):
            verifier.verify_structure(block)

    def test_equivocating_parents_are_distinct_hence_valid(self, env):
        """Section 2.3: hashes must point to *distinct* blocks; two
        equivocating blocks of one slot have distinct digests."""
        _, _, committee, _, genesis = env
        verifier = BlockVerifier(committee)
        sibling_a = make_block(env, author=1, round_number=1, salt=b"a", sign=False)
        sibling_b = make_block(env, author=1, round_number=1, salt=b"b", sign=False)
        parents = (
            sibling_a.reference,
            sibling_b.reference,
            make_block(env, author=2, sign=False).reference,
            make_block(env, author=3, sign=False).reference,
        )
        block = Block(author=0, round=2, parents=parents)
        verifier.verify_structure(block)

    def test_parent_author_outside_committee_rejected(self, env):
        _, _, committee, _, genesis = env
        verifier = BlockVerifier(committee)
        bad_ref = genesis[0].reference
        parents = tuple(b.reference for b in genesis[1:]) + (
            type(bad_ref)(author=7, round=0, digest=b"\x01" * 32),
        )
        block = Block(author=0, round=1, parents=parents)
        with pytest.raises(BlockValidationError, match="parent author"):
            verifier.verify_structure(block)


class TestCrypto:
    def test_bad_signature_rejected(self, env):
        scheme, keys, committee, coin, _ = env
        verifier = BlockVerifier(committee, scheme, coin)
        block = make_block(env, sign=False)
        with pytest.raises(BlockValidationError, match="signature"):
            verifier.verify(block)

    def test_signature_by_wrong_validator_rejected(self, env):
        scheme, keys, committee, coin, genesis = env
        verifier = BlockVerifier(committee, scheme, coin)
        unsigned = make_block(env, author=0, sign=False)
        forged = Block(
            author=0,
            round=1,
            parents=unsigned.parents,
            coin_share=unsigned.coin_share,
            signature=scheme.sign(keys[1].private_key, unsigned.signable_bytes()),
        )
        with pytest.raises(BlockValidationError, match="signature"):
            verifier.verify(forged)

    def test_missing_coin_share_rejected(self, env):
        scheme, _, committee, coin, _ = env
        verifier = BlockVerifier(committee, scheme, coin)
        block = make_block(env, share=False)
        with pytest.raises(BlockValidationError, match="coin share"):
            verifier.verify(block)

    def test_mismatched_coin_share_rejected(self, env):
        scheme, keys, committee, coin, genesis = env
        verifier = BlockVerifier(committee, scheme, coin)
        wrong_share = coin.share(1, 1)  # share authored by someone else
        block = Block(
            author=0,
            round=1,
            parents=tuple(b.reference for b in genesis),
            coin_share=wrong_share,
        )
        block = Block(
            author=block.author,
            round=block.round,
            parents=block.parents,
            coin_share=block.coin_share,
            signature=scheme.sign(keys[0].private_key, block.signable_bytes()),
        )
        with pytest.raises(BlockValidationError, match="does not match"):
            verifier.verify(block)

    def test_invalid_coin_share_rejected(self, env):
        scheme, keys, committee, coin, genesis = env
        verifier = BlockVerifier(committee, scheme, coin)
        bogus_share = CoinShare(author=0, round=1, value=b"\x00" * 32)
        block = Block(
            author=0,
            round=1,
            parents=tuple(b.reference for b in genesis),
            coin_share=bogus_share,
        )
        block = Block(
            author=block.author,
            round=block.round,
            parents=block.parents,
            coin_share=block.coin_share,
            signature=scheme.sign(keys[0].private_key, block.signable_bytes()),
        )
        with pytest.raises(BlockValidationError, match="invalid coin share"):
            verifier.verify(block)

    def test_genesis_needs_no_share_or_checks(self, env):
        scheme, _, committee, coin, genesis = env
        verifier = BlockVerifier(committee, scheme, coin)
        block = genesis[0]
        # Genesis blocks are unsigned in this implementation; structural
        # verification passes and crypto checks skip the coin share.
        verifier.verify_structure(block)

    def test_verifier_without_crypto_only_checks_structure(self, env):
        _, _, committee, _, _ = env
        verifier = BlockVerifier(committee)
        verifier.verify(make_block(env, sign=False, share=False))
