"""Tests for :mod:`repro.dag.store`."""

import pytest

from repro.block import Block, make_genesis
from repro.committee import Committee
from repro.dag.store import DagStore
from repro.errors import DuplicateBlockError, UnknownBlockError

from ..helpers import DagBuilder, FixedCoin


@pytest.fixture
def builder():
    committee = Committee.of_size(4)
    return DagBuilder(committee, FixedCoin(n=4, threshold=3))


class TestInsertion:
    def test_duplicate_digest_rejected(self, builder):
        block = builder.get(0, 0)
        with pytest.raises(DuplicateBlockError):
            builder.store.add(block)

    def test_missing_parents_rejected(self):
        store = DagStore()
        genesis = make_genesis(4)
        orphan = Block(author=0, round=1, parents=(genesis[0].reference,))
        with pytest.raises(UnknownBlockError):
            store.add(orphan)

    def test_missing_parents_listed(self):
        store = DagStore()
        genesis = make_genesis(4)
        store.add(genesis[0])
        block = Block(author=0, round=1, parents=tuple(b.reference for b in genesis))
        missing = store.missing_parents(block)
        assert {ref.author for ref in missing} == {1, 2, 3}

    def test_genesis_must_be_round_zero(self):
        store = DagStore()
        with pytest.raises(UnknownBlockError):
            store.add_genesis([Block(author=0, round=1, parents=())])


class TestIndexes:
    def test_lookup_by_digest(self, builder):
        block = builder.block(1, 1)
        assert builder.store.get(block.digest) == block
        assert builder.store.contains(block.digest)
        assert block.digest in builder.store

    def test_unknown_digest_raises(self, builder):
        with pytest.raises(UnknownBlockError):
            builder.store.get(b"\x00" * 32)

    def test_slot_index_holds_equivocations(self, builder):
        builder.round(1)
        a = builder.block(0, 2, tag="a")
        b = builder.block(0, 2, tag="b")
        slot = builder.store.slot_blocks(2, 0)
        assert set(slot) == {a, b}

    def test_round_index_in_arrival_order(self, builder):
        blocks = builder.round(1)
        assert list(builder.store.round_blocks(1)) == blocks

    def test_authors_at_round_deduplicates_equivocations(self, builder):
        builder.round(1)
        builder.block(0, 2, tag="a")
        builder.block(0, 2, tag="b")
        assert builder.store.authors_at_round(2) == frozenset({0})
        assert builder.store.num_authors_at_round(2) == 1

    def test_highest_round_tracks_inserts(self, builder):
        assert builder.store.highest_round == 0
        builder.rounds(1, 3)
        assert builder.store.highest_round == 3

    def test_len_and_iteration(self, builder):
        builder.rounds(1, 2)
        assert len(builder.store) == 12  # 4 genesis + 2 rounds x 4
        assert len(list(builder.store)) == 12

    def test_empty_round_queries(self, builder):
        assert builder.store.round_blocks(9) == ()
        assert builder.store.slot_blocks(9, 0) == ()
        assert builder.store.authors_at_round(9) == frozenset()


class TestGarbageCollection:
    def test_prune_below_removes_blocks(self, builder):
        builder.rounds(1, 6)
        removed = builder.store.prune_below(3)
        assert removed == 12  # rounds 0,1,2
        assert builder.store.lowest_round == 3
        assert builder.store.round_blocks(2) == ()
        assert builder.store.num_authors_at_round(1) == 0

    def test_prune_keeps_upper_rounds(self, builder):
        builder.rounds(1, 6)
        kept = builder.get(2, 5)
        builder.store.prune_below(4)
        assert builder.store.get(kept.digest) == kept

    def test_prune_is_idempotent(self, builder):
        builder.rounds(1, 4)
        builder.store.prune_below(2)
        assert builder.store.prune_below(2) == 0

    def test_prune_never_lowers_floor(self, builder):
        builder.rounds(1, 4)
        builder.store.prune_below(3)
        builder.store.prune_below(1)
        assert builder.store.lowest_round == 3
