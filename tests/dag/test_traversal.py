"""Tests for Algorithm 3's helpers: VotedBlock/IsVote/IsCert/IsLink and
linearization."""

import pytest

from repro.committee import Committee
from repro.dag.traversal import DagTraversal

from ..helpers import DagBuilder, FixedCoin


@pytest.fixture
def setup():
    committee = Committee.of_size(4)
    builder = DagBuilder(committee, FixedCoin(n=4, threshold=3))
    traversal = DagTraversal(builder.store, committee.quorum_threshold)
    return builder, traversal


class TestVotedBlock:
    def test_finds_target_in_full_dag(self, setup):
        builder, traversal = setup
        builder.rounds(1, 4)
        leader = builder.get(2, 1)
        vote = builder.get(0, 4)
        assert traversal.voted_block(vote, 2, 1) == leader
        assert traversal.is_vote(vote, leader)

    def test_returns_none_when_target_absent(self, setup):
        builder, traversal = setup
        builder.round(1)
        # Round 2 avoids validator 3's block entirely.
        for author in range(4):
            builder.block(author, 2, parents=[(0, 1), (1, 1), (2, 1)])
        builder.round(3)
        vote = builder.get(0, 3)
        assert traversal.voted_block(vote, 3, 1) is None
        assert not traversal.is_vote(vote, builder.get(3, 1))

    def test_dfs_follows_parent_order(self, setup):
        """With equivocating targets reachable via different parents, the
        first parent chain in listed order wins (Observation 1)."""
        builder, traversal = setup
        a = builder.block(0, 1, tag="a")
        b = builder.block(0, 1, tag="b")
        builder.block(1, 1)
        builder.block(2, 1)
        # Two round-2 blocks, one preferring each sibling (the first,
        # "via a", is listed before the second in the vote's parents).
        builder.block(1, 2, parents=[(0, 1, "a"), (1, 1), (2, 1)])
        builder.block(2, 2, parents=[(0, 1, "b"), (1, 1), (2, 1)])
        # Round-3 block whose first parent chain leads to sibling a.
        vote = builder.block(3, 3, parents=[(1, 2), (2, 2), (1, 2)][:2] + [(2, 2)])
        found = traversal.voted_block(vote, 0, 1)
        assert found == a  # via_a listed before via_b
        assert traversal.is_vote(vote, a)
        assert not traversal.is_vote(vote, b)

    def test_target_round_at_or_above_start_is_none(self, setup):
        builder, traversal = setup
        builder.rounds(1, 2)
        block = builder.get(0, 1)
        assert traversal.voted_block(block, 1, 1) is None
        assert traversal.voted_block(block, 1, 5) is None

    def test_direct_parent_match(self, setup):
        builder, traversal = setup
        builder.round(1)
        child = builder.block(0, 2)
        assert traversal.voted_block(child, 3, 1) == builder.get(3, 1)

    def test_memoization_consistent_with_fresh_traversal(self, setup):
        builder, traversal = setup
        builder.rounds(1, 5)
        vote = builder.get(2, 5)
        first = traversal.voted_block(vote, 1, 1)
        fresh = DagTraversal(builder.store, 3).voted_block(vote, 1, 1)
        assert first == fresh
        assert traversal.voted_block(vote, 1, 1) == first  # cached path


class TestIsCert:
    def test_full_dag_certifies(self, setup):
        builder, traversal = setup
        builder.rounds(1, 5)
        leader = builder.get(0, 1)
        certifier = builder.get(1, 5)
        assert traversal.is_cert(certifier, leader)

    def test_insufficient_votes_not_cert(self, setup):
        builder, traversal = setup
        builder.rounds(1, 4)
        leader = builder.get(0, 1)
        # Certifier referencing only 2 vote-round blocks by distinct authors.
        certifier = builder.block(0, 5, parents=[(0, 4), (1, 4), (0, 4)][:2] + [(1, 4)])
        # parents [(0,4),(1,4)] + duplicate removal keeps 2 distinct authors
        assert not traversal.is_cert(certifier, leader)

    def test_cert_counts_distinct_authors_not_blocks(self, setup):
        builder, traversal = setup
        builder.rounds(1, 3)
        leader = builder.get(0, 1)
        # Author 0 equivocates twice in the vote round; a certifier
        # referencing both plus one other author has only 2 distinct.
        builder.block(0, 4, tag="a")
        builder.block(0, 4, tag="b")
        builder.block(1, 4)
        certifier = builder.block(
            2, 5, parents=[(0, 4, "a"), (0, 4, "b"), (1, 4)]
        )
        assert not traversal.is_cert(certifier, leader)

    def test_cert_cache_stable(self, setup):
        builder, traversal = setup
        builder.rounds(1, 5)
        leader = builder.get(0, 1)
        certifier = builder.get(1, 5)
        assert traversal.is_cert(certifier, leader)
        assert traversal.is_cert(certifier, leader)  # cached


class TestIsLink:
    def test_self_link(self, setup):
        builder, traversal = setup
        builder.round(1)
        block = builder.get(0, 1)
        assert traversal.is_link(block, block)

    def test_ancestor_link(self, setup):
        builder, traversal = setup
        builder.rounds(1, 4)
        assert traversal.is_link(builder.get(0, 1), builder.get(2, 4))

    def test_no_link_to_disjoint_block(self, setup):
        builder, traversal = setup
        builder.round(1)
        for author in range(4):
            builder.block(author, 2, parents=[(0, 1), (1, 1), (2, 1)])
        assert not traversal.is_link(builder.get(3, 1), builder.get(0, 2))

    def test_no_link_upward(self, setup):
        builder, traversal = setup
        builder.rounds(1, 2)
        assert not traversal.is_link(builder.get(0, 2), builder.get(0, 1))


class TestLinearize:
    def test_includes_full_causal_history_once(self, setup):
        builder, traversal = setup
        builder.rounds(1, 3)
        leader = builder.get(0, 3)
        output = set()
        sequence = traversal.linearize([leader], output)
        assert sequence[-1] == leader
        assert len(sequence) == len({b.digest for b in sequence})
        assert len(sequence) == 1 + 4 + 4 + 4  # leader + rounds 0..2

    def test_deterministic_order(self, setup):
        builder, traversal = setup
        builder.rounds(1, 3)
        leader = builder.get(0, 3)
        a = traversal.linearize([leader], set())
        b = DagTraversal(builder.store, 3).linearize([leader], set())
        assert a == b

    def test_order_respects_rounds(self, setup):
        builder, traversal = setup
        builder.rounds(1, 3)
        sequence = traversal.linearize([builder.get(0, 3)], set())
        rounds = [b.round for b in sequence]
        assert rounds == sorted(rounds)

    def test_second_leader_emits_only_new_blocks(self, setup):
        builder, traversal = setup
        builder.rounds(1, 4)
        output = set()
        first = traversal.linearize([builder.get(0, 3)], output)
        second = traversal.linearize([builder.get(1, 4)], output)
        emitted = {b.digest for b in first}
        assert all(b.digest not in emitted for b in second)
        # Round-4 leader adds its round-3 siblings and itself.
        assert {b.slot for b in second} == {(3, 1), (3, 2), (3, 3), (4, 1)}

    def test_already_output_leader_skipped(self, setup):
        builder, traversal = setup
        builder.rounds(1, 3)
        leader = builder.get(0, 3)
        output = set()
        traversal.linearize([leader], output)
        assert traversal.linearize([leader], output) == []

    def test_floor_round_prunes(self, setup):
        builder, traversal = setup
        builder.rounds(1, 3)
        sequence = traversal.linearize([builder.get(0, 3)], set(), floor_round=2)
        assert min(b.round for b in sequence) == 2


class TestCacheManagement:
    def test_invalidate_below_drops_stale_targets(self, setup):
        builder, traversal = setup
        builder.rounds(1, 5)
        traversal.voted_block(builder.get(0, 5), 1, 1)
        traversal.voted_block(builder.get(0, 5), 1, 3)
        assert traversal.cache_stats()["vote_targets"] == 2
        dropped = traversal.invalidate_below(3)
        assert dropped > 0
        assert traversal.cache_stats()["vote_targets"] == 1

    def test_invalidate_below_drops_stale_cert_rounds(self, setup):
        builder, traversal = setup
        builder.rounds(1, 5)
        leader_low = builder.get(0, 1)
        leader_high = builder.get(0, 4)
        traversal.is_cert(builder.get(1, 3), leader_low)
        traversal.is_cert(builder.get(1, 5), leader_high)
        assert traversal.cache_stats()["cert_rounds"] == 2
        traversal.invalidate_below(3)
        assert traversal.cache_stats()["cert_rounds"] == 1
        # The surviving round is the high one.
        assert traversal.cache_stats()["cert_entries"] >= 1

    def test_invalidate_above_drops_high_cert_rounds_only(self, setup):
        builder, traversal = setup
        builder.rounds(1, 5)
        traversal.is_cert(builder.get(1, 3), builder.get(0, 1))
        traversal.is_cert(builder.get(1, 5), builder.get(0, 4))
        traversal.voted_block(builder.get(0, 5), 1, 1)
        before = traversal.memo_size()
        targets_before = traversal.cache_stats()["vote_targets"]
        dropped = traversal.invalidate_above(4)
        assert dropped > 0
        assert traversal.memo_size() == before - dropped
        # Vote memos are committee-independent and survive.
        assert traversal.cache_stats()["vote_targets"] == targets_before
        assert traversal.cache_stats()["cert_rounds"] == 1

    def test_memo_size_counts_vote_and_cert_entries(self, setup):
        builder, traversal = setup
        builder.rounds(1, 5)
        assert traversal.memo_size() == 0
        traversal.voted_block(builder.get(0, 5), 1, 1)
        traversal.is_cert(builder.get(1, 5), builder.get(0, 4))
        stats = traversal.cache_stats()
        assert traversal.memo_size() == stats["vote_entries"] + stats["cert_entries"]
        traversal.invalidate_certs()
        assert traversal.cache_stats()["cert_rounds"] == 0
