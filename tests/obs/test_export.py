"""Tests for the trace exporters: the Chrome trace-event JSON that
Perfetto/speedscope load, and the JSONL span log."""

import json

import pytest

from repro.obs.export import chrome_trace_events, write_chrome_trace, write_jsonl
from repro.obs.trace import Tracer


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    tracer.instant(0, "client", "tx_submitted", 0.001, {"tx": 1})
    tracer.span(0, "network", "net_flight", 0.002, 0.052, {"bytes": 512})
    tracer.instant(1, "consensus", "block_received", 0.06)
    return tracer


class TestChromeTrace:
    def test_metadata_rows_name_processes_and_threads(self):
        rows = chrome_trace_events(_sample_tracer().events)
        meta = [r for r in rows if r["ph"] == "M"]
        names = {(r["name"], r["pid"]) for r in meta}
        assert ("process_name", 0) in names
        assert ("process_name", 1) in names
        process_labels = {
            r["args"]["name"] for r in meta if r["name"] == "process_name"
        }
        assert process_labels == {"validator-0", "validator-1"}
        assert any(r["name"] == "thread_name" for r in meta)

    def test_span_row_microsecond_units(self):
        rows = chrome_trace_events(_sample_tracer().events)
        span = next(r for r in rows if r["ph"] == "X")
        assert span["name"] == "net_flight"
        assert span["ts"] == pytest.approx(2000.0)  # 0.002 s in us
        assert span["dur"] == pytest.approx(50000.0)
        assert span["args"] == {"bytes": 512}

    def test_instant_rows_thread_scoped(self):
        rows = chrome_trace_events(_sample_tracer().events)
        instants = [r for r in rows if r["ph"] == "i"]
        assert len(instants) == 2
        assert all(r["s"] == "t" for r in instants)

    def test_written_file_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace" / "out.trace.json"
        write_chrome_trace(_sample_tracer().events, path)
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert isinstance(doc["traceEvents"], list)

    def test_process_prefix(self):
        rows = chrome_trace_events(_sample_tracer().events, process_prefix="node")
        labels = {
            r["args"]["name"] for r in rows if r.get("name") == "process_name"
        }
        assert labels == {"node-0", "node-1"}


class TestJsonl:
    def test_round_trips_every_event(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "out.jsonl"
        write_jsonl(tracer.events, path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == len(tracer.events)
        assert lines[0]["name"] == "tx_submitted"
        assert lines[1]["dur"] == pytest.approx(0.05)
