"""Tests for the lifecycle tracer: event recording, the no-op default,
and the stage vocabulary both fabrics instrument against."""

from repro.obs.trace import (
    LIFECYCLE_STAGES,
    NULL_TRACER,
    SUBSYSTEMS,
    UNCERTIFIED_STAGES,
    NullTracer,
    TraceEvent,
    Tracer,
)


class TestTracer:
    def test_instant_recorded(self):
        tracer = Tracer()
        tracer.instant(1, "client", "tx_submitted", 0.5, {"tx": 7})
        assert len(tracer) == 1
        event = tracer.events[0]
        assert event == TraceEvent(1, "client", "tx_submitted", 0.5, None, {"tx": 7})
        assert not event.is_span

    def test_span_recorded_with_duration(self):
        tracer = Tracer()
        tracer.span(0, "network", "net_flight", 1.0, 1.25)
        event = tracer.events[0]
        assert event.is_span
        assert event.ts == 1.0
        assert event.dur == 0.25

    def test_span_clamps_negative_duration(self):
        # Clock skew between span endpoints must not produce a
        # negative-width bar in the viewer.
        tracer = Tracer()
        tracer.span(0, "network", "net_flight", 2.0, 1.5)
        assert tracer.events[0].dur == 0.0

    def test_stages_seen(self):
        tracer = Tracer()
        tracer.instant(0, "client", "tx_submitted", 0.0)
        tracer.instant(0, "consensus", "block_proposed", 0.1)
        tracer.instant(0, "consensus", "block_proposed", 0.2)
        assert tracer.stages_seen() == {"tx_submitted", "block_proposed"}

    def test_enabled_by_default(self):
        assert Tracer().enabled is True


class TestNullTracer:
    def test_disabled_and_empty(self):
        assert NullTracer.enabled is False
        assert NULL_TRACER.enabled is False
        assert len(NULL_TRACER.events) == 0

    def test_methods_record_nothing(self):
        tracer = NullTracer()
        tracer.instant(0, "client", "tx_submitted", 0.0)
        tracer.span(0, "network", "net_flight", 0.0, 1.0, {"bytes": 4})
        assert len(tracer.events) == 0
        assert tracer.stages_seen() == set()


class TestStageVocabulary:
    def test_lifecycle_order(self):
        assert LIFECYCLE_STAGES[0] == "tx_submitted"
        assert LIFECYCLE_STAGES[-1] == "tx_executed"
        assert len(LIFECYCLE_STAGES) == 8

    def test_uncertified_protocols_skip_certification(self):
        assert set(UNCERTIFIED_STAGES) == set(LIFECYCLE_STAGES) - {"block_certified"}

    def test_subsystems_are_distinct(self):
        assert len(set(SUBSYSTEMS)) == len(SUBSYSTEMS)
