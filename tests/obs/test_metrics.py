"""Tests for the dependency-free metrics registry."""

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5
        assert c.total == 3.5

    def test_cannot_decrease(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_labels_keyed_order_independent(self):
        c = Counter("x")
        c.inc(mode="warm", phase="sync")
        c.inc(phase="sync", mode="warm")
        assert c.value(mode="warm", phase="sync") == 2.0
        assert c.snapshot() == {"mode=warm,phase=sync": 2.0}

    def test_untouched_snapshot_is_zero(self):
        # An untouched counter is 0, not an empty label table — status
        # JSON consumers key on scalar values for unlabeled metrics.
        assert Counter("x").snapshot() == 0.0

    def test_unlabeled_snapshot_is_scalar(self):
        c = Counter("x")
        c.inc(4)
        assert c.snapshot() == 4.0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value() == 12

    def test_untouched_snapshot_is_zero(self):
        assert Gauge("depth").snapshot() == 0.0


class TestHistogram:
    def test_count_sum_mean(self):
        h = Histogram("lat")
        for v in (0.1, 0.2, 0.3):
            h.observe(v)
        assert h.count() == 3
        assert h.mean() == pytest.approx(0.2)

    def test_snapshot_min_max(self):
        h = Histogram("lat")
        h.observe(0.5)
        h.observe(0.1)
        snap = h.snapshot()
        assert snap["min"] == 0.1
        assert snap["max"] == 0.5
        assert snap["count"] == 2

    def test_empty_snapshot_is_zero_series(self):
        snap = Histogram("lat").snapshot()
        assert snap["count"] == 0
        assert snap["mean"] is None

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", bounds=(1.0, 0.5))

    def test_out_of_range_lands_in_overflow(self):
        h = Histogram("lat", bounds=(1.0,))
        h.observe(100.0)
        assert h.count() == 1


class TestMetricsRegistry:
    def test_registration_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_snapshot_is_json_serializable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("commits").inc(3)
        registry.gauge("round").set(7)
        registry.histogram("lat").observe(0.25)
        snap = json.loads(json.dumps(registry.snapshot()))
        assert snap["commits"] == 3.0
        assert snap["round"] == 7
        assert snap["lat"]["count"] == 1

    def test_names_sorted(self):
        registry = MetricsRegistry()
        registry.gauge("b")
        registry.counter("a")
        assert registry.names() == ["a", "b"]
