"""The driver's fleet surface: ``--fleet-plan`` (dry sizing view) and a
real ``--fleet local:2`` smoke run through ``run_all.main``."""

from __future__ import annotations

import json

import pytest

from benchmarks import run_all


class TestFleetPlan:
    def test_plan_prints_shards_without_running(self, tmp_path, capsys):
        assert run_all.main([
            "--smoke", "--only", "ordering", "--results", str(tmp_path),
            "--list", "--fleet-plan", "--fleet", "local:3",
        ]) == 0
        out = capsys.readouterr().out
        assert "fleet plan: local backend, 3 workers" in out
        assert "local-0-0" in out and "local-0-2" in out
        # A dry plan must not execute anything.
        assert not (tmp_path / "points").exists()

    def test_fleet_plan_requires_list(self, tmp_path):
        with pytest.raises(SystemExit):
            run_all.main([
                "--smoke", "--results", str(tmp_path), "--fleet-plan",
            ])

    def test_fleet_rejects_profile(self, tmp_path):
        with pytest.raises(SystemExit):
            run_all.main([
                "--smoke", "--results", str(tmp_path),
                "--fleet", "local:2", "--profile",
            ])


@pytest.mark.slow
class TestFleetRun:
    def test_smoke_fleet_run_records_provenance(self, tmp_path):
        assert run_all.main([
            "--smoke", "--only", "ordering", "--results", str(tmp_path),
            "--fleet", "local:2",
        ]) == 0
        summary = json.loads((tmp_path / "summary.json").read_text())
        fleet = summary["fleet"]
        assert fleet["backend"] == "local"
        assert fleet["workers"] == 2
        assert fleet["worker_failures"] == []
        assert sum(fleet["completed_by"].values()) == fleet["points"]
        # Phase 2 (summaries) ran entirely from the fleet-filled cache.
        assert summary["totals"]["executed"] == 0
        assert summary["totals"]["cached"] == summary["totals"]["points"]
