"""Shared fixtures for the fleet tests: tiny configs and work items."""

from __future__ import annotations

from repro.fleet.manifest import WorkItem
from repro.sim.runner import ExperimentConfig
from repro.sim.sweep import config_hash, config_to_dict


def tiny_config(**overrides) -> ExperimentConfig:
    """A deployment that finishes in well under a second."""
    defaults = dict(
        protocol="mahi-mahi-5",
        num_validators=4,
        load_tps=200.0,
        duration=1.0,
        warmup=0.25,
        uniform_delay=0.05,
        model_cpu=False,
        seed=7,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def tiny_items(count: int, **overrides) -> list[WorkItem]:
    """``count`` distinct work items over tiny configs."""
    items = []
    for i in range(count):
        config = tiny_config(seed=100 + i, **overrides)
        items.append(
            WorkItem(
                config_hash=config_hash(config),
                config=config_to_dict(config),
                sweep="tiny",
            )
        )
    return items
