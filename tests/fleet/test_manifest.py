"""The claim protocol: atomic claims, crash recovery, receipts.

These tests pin the safety properties the fleet rests on:

* a queue entry can be claimed by **exactly one** worker, even under
  thread-level contention (claim = atomic rename);
* a worker crashing mid-claim does not lose the point — the straggler
  pass re-queues it (with the attempt counter bumped) and another
  worker picks it up;
* a point whose result landed before its worker died is promoted to
  done without being re-run;
* a poisonous point exhausts ``max_attempts`` instead of looping.
"""

from __future__ import annotations

import json
import threading

from repro.fleet.manifest import Manifest, WorkItem

from tests.fleet.helpers import tiny_items


class TestCreate:
    def test_layout_and_scope(self, tmp_path):
        items = tiny_items(3)
        manifest = Manifest.create(tmp_path / "fleet", items)
        assert sorted(manifest.item_hashes()) == sorted(i.config_hash for i in items)
        assert manifest.pending() == sorted(i.config_hash for i in items)
        assert manifest.claims() == []
        assert manifest.completions() == {}

    def test_duplicate_hashes_deduplicated(self, tmp_path):
        items = tiny_items(2)
        manifest = Manifest.create(tmp_path / "fleet", items + items)
        assert len(manifest.item_hashes()) == 2
        assert len(manifest.pending()) == 2


class TestClaim:
    def test_claim_removes_from_queue(self, tmp_path):
        manifest = Manifest.create(tmp_path / "fleet", tiny_items(2))
        item = manifest.claim("w0")
        assert item is not None
        assert item.config_hash not in manifest.pending()
        assert [c.config_hash for c in manifest.claims()] == [item.config_hash]

    def test_empty_queue_returns_none(self, tmp_path):
        manifest = Manifest.create(tmp_path / "fleet", [])
        assert manifest.claim("w0") is None

    def test_two_workers_never_share_a_claim(self, tmp_path):
        """Thread-level stampede: every point claimed exactly once."""
        items = tiny_items(12)
        manifest = Manifest.create(tmp_path / "fleet", items)
        claimed: list[str] = []
        lock = threading.Lock()

        def drain(worker_id: str) -> None:
            while True:
                item = manifest.claim(worker_id)
                if item is None:
                    return
                with lock:
                    claimed.append(item.config_hash)

        threads = [
            threading.Thread(target=drain, args=(f"w{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(claimed) == sorted(i.config_hash for i in items)
        assert len(claimed) == len(set(claimed))  # no double-claims
        assert manifest.pending() == []

    def test_completing_without_a_claim_leaves_no_receipt(self, tmp_path):
        """A worker whose claim was released cannot retro-commit it."""
        manifest = Manifest.create(tmp_path / "fleet", tiny_items(1))
        item = manifest.claim("alive")
        # "alive" looked dead; its claim is released to the queue.
        manifest.release_stale(older_than_s=0.0, landed=lambda h: False, max_attempts=5)
        manifest.complete(item, "alive")  # tolerated, but records nothing
        assert manifest.completions() == {}
        # The point is still pending for someone else.
        assert manifest.pending() == [item.config_hash]


class TestComplete:
    def test_claim_moves_to_done(self, tmp_path):
        manifest = Manifest.create(tmp_path / "fleet", tiny_items(1))
        item = manifest.claim("w0")
        manifest.complete(item, "w0")
        assert manifest.claims() == []
        assert manifest.completions() == {item.config_hash: "w0"}

    def test_first_receipt_wins(self, tmp_path):
        manifest = Manifest.create(tmp_path / "fleet", tiny_items(1))
        item = manifest.claim("w0")
        (manifest.done_dir / f"{item.config_hash}.earlier.json").write_text(
            json.dumps(item.to_dict())
        )
        manifest.complete(item, "w0")
        assert manifest.completions() == {item.config_hash: "earlier"}


class TestReleaseStale:
    def test_crash_mid_claim_requeues_with_bumped_attempts(self, tmp_path):
        """A dead worker's point goes back to the queue and is claimable."""
        manifest = Manifest.create(tmp_path / "fleet", tiny_items(1))
        item = manifest.claim("dead")
        released, exhausted = manifest.release_stale(
            older_than_s=0.0, landed=lambda h: False, max_attempts=3
        )
        assert released == [item.config_hash]
        assert exhausted == []
        reclaimed = manifest.claim("alive")
        assert reclaimed is not None
        assert reclaimed.config_hash == item.config_hash
        assert reclaimed.attempts == item.attempts + 1

    def test_fresh_claims_survive_the_timeout(self, tmp_path):
        manifest = Manifest.create(tmp_path / "fleet", tiny_items(1))
        manifest.claim("busy")
        released, exhausted = manifest.release_stale(
            older_than_s=3600.0, landed=lambda h: False, max_attempts=3
        )
        assert released == [] and exhausted == []
        assert len(manifest.claims()) == 1

    def test_landed_point_promoted_to_done_not_rerun(self, tmp_path):
        """Worker died between the store write and the receipt."""
        manifest = Manifest.create(tmp_path / "fleet", tiny_items(1))
        item = manifest.claim("dead")
        released, exhausted = manifest.release_stale(
            older_than_s=0.0, landed=lambda h: True, max_attempts=3
        )
        assert released == [] and exhausted == []
        assert manifest.pending() == []
        assert manifest.completions() == {item.config_hash: "dead"}

    def test_poisonous_point_exhausts_attempts(self, tmp_path):
        manifest = Manifest.create(tmp_path / "fleet", tiny_items(1))
        expected = manifest.item_hashes()[0]
        exhausted: list[str] = []
        for _ in range(5):
            if manifest.claim("doomed") is None:
                break
            _, exhausted = manifest.release_stale(
                older_than_s=0.0, landed=lambda h: False, max_attempts=3
            )
            if exhausted:
                break
        assert exhausted == [expected]
        assert manifest.pending() == []  # not re-queued after exhaustion
        assert manifest.claims() == []


class TestWorkItem:
    def test_round_trip(self):
        item = tiny_items(1)[0]
        assert WorkItem.from_dict(item.to_dict()) == item

    def test_attempts_default(self):
        raw = tiny_items(1)[0].to_dict()
        del raw["attempts"]
        assert WorkItem.from_dict(raw).attempts == 0
