"""The fleet coordinator end to end: sharding, merging, verification,
and the acceptance property — a local 2-worker fleet produces a point
cache byte-identical to a serial run."""

from __future__ import annotations

import json

import pytest

from repro.fleet import FleetError, FleetSpec, plan_shards, run_fleet
from repro.fleet.coordinator import pending_items, verify_merge
from repro.fleet.manifest import Manifest
from repro.fleet.worker import run_item
from repro.sim.sweep import (
    FigureSpec,
    ResultsStore,
    SweepSpec,
    config_from_dict,
)

from tests.fleet.helpers import tiny_config, tiny_items
from tests.fleet.test_backends import FakeSshRunner, ssh_spec


class TestPlanShards:
    def test_round_robin(self):
        plan = plan_shards(tiny_items(5), FleetSpec.local(2))
        assert dict(plan) == {"local-0-0": 3, "local-0-1": 2}

    def test_idle_workers_still_listed(self):
        plan = plan_shards(tiny_items(1), FleetSpec.local(3))
        assert sorted(count for _, count in plan) == [0, 0, 1]


class TestPendingItems:
    def _sweeps(self, configs):
        return [
            SweepSpec(
                name="tiny",
                figure=FigureSpec(figure="test", title="t"),
                configs=tuple(configs),
            )
        ]

    def test_cache_hits_excluded_and_duplicates_collapsed(self, tmp_path):
        store = ResultsStore(tmp_path)
        cached, fresh = tiny_config(seed=1), tiny_config(seed=2)
        run_item(tiny_items(1)[0], store)  # unrelated point
        item = pending_items(self._sweeps([cached]), store)[0]
        run_item(item, store)  # now `cached` is a hit
        items = pending_items(self._sweeps([cached, fresh, fresh]), store)
        assert [config_from_dict(i.config).seed for i in items] == [2]


class TestVerifyMerge:
    def test_missing_point_is_fatal(self, tmp_path):
        manifest = Manifest.create(tmp_path / "fleet", tiny_items(1))
        store = ResultsStore(tmp_path / "results")
        store.points_dir.mkdir(parents=True)
        with pytest.raises(FleetError, match="never landed"):
            verify_merge(manifest, store)

    def test_wrong_config_hash_is_fatal(self, tmp_path):
        """A worker running different code (schema skew) cannot slip a
        mismatched point past the merge."""
        items = tiny_items(1)
        manifest = Manifest.create(tmp_path / "fleet", items)
        store = ResultsStore(tmp_path / "results")
        run_item(items[0], store)
        path = store.points_dir / f"{items[0].config_hash}.json"
        data = json.loads(path.read_text())
        data["config"]["seed"] = 999  # recomputed hash no longer matches
        path.write_text(json.dumps(data))
        with pytest.raises(FleetError, match="wrong config_hash"):
            verify_merge(manifest, store)

    def test_clean_merge_counts_points(self, tmp_path):
        items = tiny_items(2)
        manifest = Manifest.create(tmp_path / "fleet", items)
        store = ResultsStore(tmp_path / "results")
        for item in items:
            run_item(item, store)
        assert verify_merge(manifest, store) == 2


class TestRunFleetLocal:
    def test_two_worker_fleet_matches_serial_byte_for_byte(self, tmp_path):
        """The acceptance property: same points, same bytes."""
        items = tiny_items(4)
        serial = ResultsStore(tmp_path / "serial")
        for item in items:
            run_item(item, serial)

        fleet = ResultsStore(tmp_path / "fleet")
        report = run_fleet(
            items, fleet, FleetSpec.local(2), fleet_root=tmp_path / "run"
        )
        assert report.points == 4
        assert report.worker_failures == []
        assert sum(report.completed_by.values()) == 4

        names = sorted(p.name for p in serial.points_dir.glob("*.json")
                       if not p.name.endswith(".wall.json"))
        assert len(names) == 4
        for name in names:
            assert (serial.points_dir / name).read_bytes() == (
                fleet.points_dir / name
            ).read_bytes()

    def test_cache_hits_short_circuit(self, tmp_path):
        items = tiny_items(2)
        store = ResultsStore(tmp_path / "results")
        for item in items:
            run_item(item, store)
        before = {
            p.name: p.read_bytes() for p in store.points_dir.glob("*.json")
        }
        report = run_fleet(
            items, store, FleetSpec.local(1), fleet_root=tmp_path / "run"
        )
        assert report.points == 2
        after = {p.name: p.read_bytes() for p in store.points_dir.glob("*.json")}
        assert {n: b for n, b in after.items() if not n.endswith(".wall.json")} == {
            n: b for n, b in before.items() if not n.endswith(".wall.json")
        }


class TestRunFleetSsh:
    def test_dead_worker_point_redispatched_next_round(self, tmp_path):
        """Per-point retry on worker death, through the whole coordinator."""
        items = tiny_items(2)
        store = ResultsStore(tmp_path / "results")
        remote = tmp_path / "remote"
        spec = ssh_spec(remote, workers=1)
        runner = FakeSshRunner(remote, fail_worker_rounds=1)
        report = run_fleet(
            items, store, spec, fleet_root=tmp_path / "run", run_command=runner
        )
        assert report.rounds == 2
        assert report.redispatched >= 2
        assert report.worker_failures == ["node1-0-0"]
        assert sum(report.completed_by.values()) == 2

    def test_always_dying_worker_exhausts_attempts(self, tmp_path):
        items = tiny_items(1)
        store = ResultsStore(tmp_path / "results")
        remote = tmp_path / "remote"
        spec = ssh_spec(remote, workers=1)
        runner = FakeSshRunner(remote, fail_worker_rounds=99)
        with pytest.raises(FleetError, match="failed 3 attempts"):
            run_fleet(
                items, store, spec, fleet_root=tmp_path / "run", run_command=runner
            )
