"""Fleet spec parsing and validation."""

from __future__ import annotations

import json

import pytest

from repro.fleet.manifest import FleetError
from repro.fleet.spec import FleetHost, FleetSpec, tomllib


class TestShorthand:
    def test_local_n(self):
        spec = FleetSpec.load("local:3")
        assert spec.backend == "local"
        assert spec.total_workers == 3

    def test_local_defaults_to_machine_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "5")
        assert FleetSpec.load("local").total_workers == 5

    def test_not_a_file_is_a_clear_error(self):
        with pytest.raises(FleetError, match="neither 'local"):
            FleetSpec.load("no/such/spec.toml")


class TestJson:
    def test_ssh_spec_round_trip(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(
            json.dumps(
                {
                    "backend": "ssh",
                    "retry_timeout_s": 30,
                    "max_attempts": 2,
                    "hosts": [
                        {"host": "a.example", "workers": 4, "remote_path": "~/repro"},
                        {"host": "b.example", "workers": 2, "remote_path": "~/repro"},
                    ],
                }
            )
        )
        spec = FleetSpec.load(str(path))
        assert spec.backend == "ssh"
        assert spec.total_workers == 6
        assert spec.retry_timeout_s == 30.0
        assert spec.max_attempts == 2
        assert [h.host for h in spec.hosts] == ["a.example", "b.example"]

    def test_unknown_keys_rejected(self):
        with pytest.raises(FleetError, match="unknown fleet spec keys"):
            FleetSpec.parse(json.dumps({"backend": "local", "hosst": []}), fmt="json")
        with pytest.raises(FleetError, match="unknown fleet host keys"):
            FleetSpec.parse(
                json.dumps({"hosts": [{"workers": 1, "hostname": "x"}]}), fmt="json"
            )

    def test_garbage_is_a_clear_error(self):
        with pytest.raises(FleetError, match="unparseable JSON"):
            FleetSpec.parse("{", fmt="json")
        with pytest.raises(FleetError, match="top level"):
            FleetSpec.parse("[1, 2]", fmt="json")


@pytest.mark.skipif(tomllib is None, reason="tomllib needs Python 3.11+")
class TestToml:
    def test_ssh_spec(self):
        spec = FleetSpec.parse(
            "\n".join(
                [
                    'backend = "ssh"',
                    "[[hosts]]",
                    'host = "node1"',
                    "workers = 8",
                    'remote_path = "~/repro"',
                ]
            ),
            fmt="toml",
        )
        assert spec.backend == "ssh"
        assert spec.hosts[0].workers == 8

    def test_garbage_is_a_clear_error(self):
        with pytest.raises(FleetError, match="unparseable TOML"):
            FleetSpec.parse("backend = = =", fmt="toml")


class TestValidation:
    def test_unknown_backend(self):
        with pytest.raises(FleetError, match="unknown fleet backend"):
            FleetSpec(backend="k8s", hosts=(FleetHost(),))

    def test_needs_hosts(self):
        with pytest.raises(FleetError, match="at least one host"):
            FleetSpec(backend="local", hosts=())

    def test_ssh_needs_hostnames(self):
        with pytest.raises(FleetError, match="non-empty 'host'"):
            FleetSpec(backend="ssh", hosts=(FleetHost(workers=2),))

    def test_workers_floor(self):
        with pytest.raises(FleetError, match="workers >= 1"):
            FleetSpec.local(0)


class TestWorkerIds:
    def test_dots_sanitized(self):
        """Dots are the claim-file separator and must never appear in a
        worker id."""
        ids = FleetHost(host="user@node1.example.com", workers=2).worker_ids(0)
        assert len(ids) == 2
        assert all("." not in worker_id for worker_id in ids)
        assert len(set(ids)) == 2

    def test_local_host_label(self):
        assert FleetHost(workers=1).worker_ids(3) == ["local-3-0"]
