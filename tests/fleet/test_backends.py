"""Worker backends: env discipline, ssh command construction, and the
ssh dispatch protocol driven through an injected (network-free) runner."""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

from repro.fleet.backends import SshBackend, point_landed, worker_env
from repro.fleet.manifest import Manifest, WorkItem
from repro.fleet.spec import FleetHost, FleetSpec
from repro.fleet.worker import run_item
from repro.sim.sweep import ResultsStore

from tests.fleet.helpers import tiny_items


class TestWorkerEnv:
    def test_no_nested_pools(self):
        """Every fleet worker runs with an explicit workers=1: the fleet
        owns the fan-out (the oversubscription fix)."""
        assert worker_env()["REPRO_BENCH_WORKERS"] == "1"

    def test_repro_is_importable(self):
        env = worker_env()
        assert any(Path(p, "repro").is_dir() for p in env["PYTHONPATH"].split(":"))


class TestPointLanded:
    def test_missing_torn_and_mismatched(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.points_dir.mkdir(parents=True)
        assert not point_landed(store, "abc")
        (store.points_dir / "abc.json").write_text('{"config_hash": "ab')
        assert not point_landed(store, "abc")
        (store.points_dir / "abc.json").write_text(json.dumps({"config_hash": "xyz"}))
        assert not point_landed(store, "abc")
        (store.points_dir / "abc.json").write_text(json.dumps({"config_hash": "abc"}))
        assert point_landed(store, "abc")


def ssh_spec(remote_path: Path, workers: int = 2) -> FleetSpec:
    return FleetSpec(
        backend="ssh",
        hosts=(FleetHost(host="node1", workers=workers, remote_path=str(remote_path)),),
        retry_timeout_s=0.0,
        max_attempts=3,
    )


class TestSshCommands:
    def test_command_construction(self, tmp_path):
        spec = ssh_spec(Path("~/repro"))
        backend = SshBackend(spec)
        host = spec.hosts[0]
        store = ResultsStore(tmp_path / "results")
        push = backend.push_shard_command(host, tmp_path / "s.json", "s.json")
        assert push[0] == "rsync" and push[-1] == "node1:~/repro/s.json"
        worker = backend.worker_command(host, "s.json", "node1-0-0")
        assert worker[:2] == ["ssh", "node1"]
        assert "REPRO_BENCH_WORKERS=1" in worker[2]
        assert "--shard s.json" in worker[2]
        pull = backend.pull_results_command(host, store)
        assert pull[1] == "-az" and pull[2].startswith("node1:")


class FakeSshRunner:
    """Executes the ssh backend's command plan locally: ``rsync`` copies
    become file copies, the remote worker invocation runs the shard
    in-process against the 'remote' checkout directory."""

    def __init__(self, remote_path: Path, *, fail_worker_rounds: int = 0) -> None:
        self.remote_path = remote_path
        self.fail_worker_rounds = fail_worker_rounds
        self.commands: list[list[str]] = []

    def __call__(self, command: list[str], **kwargs) -> subprocess.CompletedProcess:
        self.commands.append(command)
        ok = subprocess.CompletedProcess(command, 0, stdout="", stderr="")
        if command[0] == "rsync":
            source, dest = command[-2], command[-1]
            if dest.startswith("node1:"):  # push: shard file to the host
                target = Path(dest.partition(":")[2])
                target.parent.mkdir(parents=True, exist_ok=True)
                target.write_bytes(Path(source).read_bytes())
            else:  # pull: remote points back into the local store
                remote_points = Path(source.partition(":")[2])
                local_points = Path(dest)
                local_points.mkdir(parents=True, exist_ok=True)
                if remote_points.is_dir():
                    for path in remote_points.iterdir():
                        (local_points / path.name).write_bytes(path.read_bytes())
            return ok
        # The ssh worker invocation: run the shard against remote_path.
        if self.fail_worker_rounds > 0:
            self.fail_worker_rounds -= 1
            return subprocess.CompletedProcess(command, 137, stdout="", stderr="killed")
        remote = command[2]
        shard_name = remote.split("--shard ")[1].split(" ")[0]
        shard = self.remote_path / shard_name
        store = ResultsStore(self.remote_path / "results")
        for raw in json.loads(shard.read_text()):
            run_item(WorkItem.from_dict(raw), store)
        return ok


class TestSshDispatch:
    def test_round_trip_lands_and_completes_everything(self, tmp_path):
        items = tiny_items(3)
        manifest = Manifest.create(tmp_path / "fleet", items)
        store = ResultsStore(tmp_path / "results")
        store.points_dir.mkdir(parents=True)
        remote = tmp_path / "remote"
        spec = ssh_spec(remote, workers=2)
        backend = SshBackend(spec, run_command=FakeSshRunner(remote))
        outcome = backend.run_round(manifest, store, lambda line: None)
        assert outcome.failures == []
        assert manifest.pending() == []
        assert sorted(manifest.completions()) == sorted(i.config_hash for i in items)
        for item in items:
            assert point_landed(store, item.config_hash)

    def test_dead_worker_leaves_claims_for_the_straggler_pass(self, tmp_path):
        """A host that dies mid-round keeps its claims; the coordinator's
        release pass re-queues them and a later round finishes the work."""
        items = tiny_items(2)
        manifest = Manifest.create(tmp_path / "fleet", items)
        store = ResultsStore(tmp_path / "results")
        store.points_dir.mkdir(parents=True)
        remote = tmp_path / "remote"
        spec = ssh_spec(remote, workers=1)
        runner = FakeSshRunner(remote, fail_worker_rounds=1)
        backend = SshBackend(spec, run_command=runner)

        outcome = backend.run_round(manifest, store, lambda line: None)
        assert outcome.failures == ["node1-0-0"]
        assert manifest.completions() == {}
        assert len(manifest.claims()) == 2  # left for the straggler pass

        released, exhausted = manifest.release_stale(
            older_than_s=0.0,
            landed=lambda h: point_landed(store, h),
            max_attempts=3,
        )
        assert sorted(released) == sorted(i.config_hash for i in items)
        assert exhausted == []

        outcome = backend.run_round(manifest, store, lambda line: None)
        assert outcome.failures == []
        assert sorted(manifest.completions()) == sorted(i.config_hash for i in items)
        for item in items:
            assert point_landed(store, item.config_hash)
