"""Property-based tests (hypothesis) on core data structures and
protocol invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.block import Block, make_genesis
from repro.committee import Committee
from repro.config import ProtocolConfig
from repro.core.protocol import MahiMahiCore
from repro.crypto.coin import FastCoin
from repro.crypto.hashing import hash_parts
from repro.crypto.threshold import combine_shares, deal
from repro.dag.traversal import DagTraversal
from repro.transaction import Transaction, decode_transactions, encode_transactions

from .helpers import DagBuilder, FixedCoin

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
transactions = st.builds(
    Transaction,
    tx_id=st.integers(min_value=0, max_value=2**63 - 1),
    submitted_at=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    payload=st.binary(max_size=200),
)

coin_shares = st.builds(
    lambda a, r, v: __import__("repro.crypto.coin", fromlist=["CoinShare"]).CoinShare(
        author=a, round=r, value=v
    ),
    a=st.integers(min_value=0, max_value=100),
    r=st.integers(min_value=0, max_value=10_000),
    v=st.binary(min_size=1, max_size=64),
)


@st.composite
def blocks(draw):
    genesis = make_genesis(4)
    parent_subset = draw(st.sets(st.integers(0, 3), min_size=1, max_size=4))
    return Block(
        author=draw(st.integers(0, 3)),
        round=draw(st.integers(1, 100)),
        parents=tuple(genesis[i].reference for i in sorted(parent_subset)),
        transactions=tuple(draw(st.lists(transactions, max_size=5))),
        coin_share=draw(st.one_of(st.none(), coin_shares)),
        signature=draw(st.binary(max_size=64)),
        salt=draw(st.binary(max_size=16)),
    )


# ----------------------------------------------------------------------
# Codec properties
# ----------------------------------------------------------------------
@given(transactions)
def test_transaction_roundtrip(tx):
    decoded, consumed = Transaction.decode(tx.encode())
    assert decoded == tx
    assert consumed == len(tx.encode())


@given(st.lists(transactions, max_size=20))
def test_transaction_batch_roundtrip(batch):
    decoded, _ = decode_transactions(encode_transactions(tuple(batch)))
    assert decoded == tuple(batch)


@given(blocks())
@settings(max_examples=50)
def test_block_roundtrip(block):
    decoded, _ = Block.decode(block.encode())
    assert decoded == block
    assert decoded.digest == block.digest


@given(blocks(), blocks())
@settings(max_examples=50)
def test_distinct_signed_content_has_distinct_digests(a, b):
    """The digest covers exactly the signed contents — blocks differing
    only in their (unsigned-over) signature share a digest."""
    if a.signable_bytes() != b.signable_bytes():
        assert a.digest != b.digest
    else:
        assert a.digest == b.digest


@given(st.lists(st.binary(max_size=30), max_size=10))
def test_hash_parts_injective_framing(parts):
    """Concatenating two adjacent parts must change the hash."""
    if len(parts) >= 2 and parts[0]:
        merged = [parts[0] + parts[1]] + parts[2:]
        assert hash_parts(parts) != hash_parts(merged)


# ----------------------------------------------------------------------
# Threshold sharing properties
# ----------------------------------------------------------------------
@given(
    st.integers(min_value=4, max_value=10),
    st.integers(min_value=0, max_value=1_000),
    st.randoms(use_true_random=False),
)
@settings(max_examples=20, deadline=None)
def test_any_quorum_reconstructs_same_secret(n, seed, rng):
    threshold = n - (n - 1) // 3
    setup, shares = deal(n, threshold, seed=seed)
    subset_a = rng.sample(shares, threshold)
    subset_b = rng.sample(shares, threshold)
    assert combine_shares(setup, subset_a) == combine_shares(setup, subset_b)


# ----------------------------------------------------------------------
# Linearization properties
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=5, max_value=12))
@settings(max_examples=15, deadline=None)
def test_linearize_is_topological_and_complete(seed, rounds):
    """Over random sparse DAGs: linearization emits each block once, in
    an order where every block follows its causal ancestors."""
    committee = Committee.of_size(4)
    builder = DagBuilder(committee, FixedCoin(n=4, threshold=3))
    rng = random.Random(seed)
    for r in range(1, rounds + 1):
        previous = sorted(builder.store.authors_at_round(r - 1))
        for author in range(4):
            if rng.random() < 0.15 and r > 1 and len(previous) >= 4:
                continue  # author skips the round sometimes
            k = min(len(previous), max(3, len(previous) - 1))
            quorum = rng.sample(previous, k)
            builder.block(author, r, parents=[(a, r - 1) for a in sorted(quorum)])
    traversal = DagTraversal(builder.store, 3)
    tips = builder.store.round_blocks(builder.store.highest_round)
    sequence = traversal.linearize(list(tips), set())
    digests = [b.digest for b in sequence]
    assert len(digests) == len(set(digests))
    position = {digest: i for i, digest in enumerate(digests)}
    for block in sequence:
        for parent in block.parents:
            if parent.digest in position:
                assert position[parent.digest] < position[block.digest]


# ----------------------------------------------------------------------
# End-to-end agreement property
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_lockstep_cluster_total_order(seed):
    """Random per-round delivery orders never change the committed
    sequence prefix agreement."""
    committee = Committee.of_size(4)
    coin = FastCoin(seed=b"prop", n=4, threshold=3)
    config = ProtocolConfig(wave_length=5, leaders_per_round=2)
    cores = [MahiMahiCore(i, committee, config, coin) for i in range(4)]
    rng = random.Random(seed)
    for _ in range(14):
        proposals = [c.maybe_propose() for c in cores]
        deliveries = [
            (c, b) for b in proposals if b for c in cores if c.authority != b.author
        ]
        rng.shuffle(deliveries)
        for core, block in deliveries:
            core.add_block(block)
        for core in cores:
            core.try_commit()
    sequences = [[b.digest for b in c.committed_blocks()] for c in cores]
    shortest = min(len(s) for s in sequences)
    assert shortest > 0
    for sequence in sequences:
        assert sequence[:shortest] == sequences[0][:shortest]
