"""Unit tests for the state-sync checkpoint primitives."""

import pytest

from repro.block import BlockRef, make_genesis
from repro.committee import Committee
from repro.config import ProtocolConfig
from repro.core.protocol import MahiMahiCore
from repro.crypto.coin import FastCoin
from repro.crypto.hashing import hash_bytes
from repro.errors import ConfigError, ReproError
from repro.statesync import (
    GENESIS_STATE,
    Checkpoint,
    CommitLedger,
    best_attested,
    chain_digest,
    digest_executor_state,
)


def make_checkpoint(round_number=8, floor=0, refs=(), chain=GENESIS_STATE, length=12):
    return Checkpoint(
        round=round_number,
        floor=floor,
        next_slot=(round_number + 1, 0),
        chain=chain,
        sequence_length=length,
        committee_size=10,
        linearized=tuple(refs),
    )


def ref(author, round_number, tag=b"r"):
    return BlockRef(
        author=author,
        round=round_number,
        digest=hash_bytes(tag + bytes([author, round_number])),
    )


class TestCheckpointCodec:
    def test_encode_decode_roundtrip(self):
        refs = (ref(0, 7), ref(3, 8))
        checkpoint = make_checkpoint(refs=refs)
        decoded, offset = Checkpoint.decode(checkpoint.encode())
        assert decoded == checkpoint
        assert offset == len(checkpoint.encode())
        assert decoded.checkpoint_id == checkpoint.checkpoint_id

    def test_content_address_changes_with_content(self):
        a = make_checkpoint(round_number=8)
        b = make_checkpoint(round_number=10)
        c = make_checkpoint(round_number=8, chain=hash_bytes(b"other"))
        assert a.checkpoint_id != b.checkpoint_id
        assert a.checkpoint_id != c.checkpoint_id
        assert a.checkpoint_id == make_checkpoint(round_number=8).checkpoint_id

    def test_wire_size_is_encoded_length(self):
        checkpoint = make_checkpoint(refs=(ref(0, 8),))
        assert checkpoint.wire_size == len(checkpoint.encode())

    def test_frontier_is_highest_round_refs(self):
        refs = (ref(0, 6), ref(1, 8), ref(2, 8), ref(3, 7))
        checkpoint = make_checkpoint(refs=refs)
        assert set(checkpoint.frontier) == {refs[1], refs[2]}
        assert make_checkpoint(refs=()).frontier == ()


class TestChainDigest:
    def test_chain_is_order_sensitive(self):
        a, b = hash_bytes(b"a"), hash_bytes(b"b")
        ab = chain_digest(chain_digest(GENESIS_STATE, a), b)
        ba = chain_digest(chain_digest(GENESIS_STATE, b), a)
        assert ab != ba

    def test_executor_digest_binds_index_and_root(self):
        root = hash_bytes(b"root")
        assert digest_executor_state(1, root) != digest_executor_state(2, root)
        assert digest_executor_state(1, root) != digest_executor_state(1, hash_bytes(b"x"))
        assert digest_executor_state(3, root) == digest_executor_state(3, root)


class TestBestAttested:
    def test_requires_quorum(self):
        checkpoint = make_checkpoint()
        votes = {checkpoint.checkpoint_id: (checkpoint, {1, 2})}
        assert best_attested(votes, quorum=3) is None
        votes[checkpoint.checkpoint_id][1].add(3)
        assert best_attested(votes, quorum=3) == checkpoint

    def test_highest_attested_round_wins(self):
        low, high = make_checkpoint(round_number=4), make_checkpoint(round_number=8)
        votes = {
            low.checkpoint_id: (low, {1, 2, 3, 4}),
            high.checkpoint_id: (high, {2, 3, 4}),
        }
        assert best_attested(votes, quorum=3) == high
        # A higher round attested below quorum does not win.
        higher = make_checkpoint(round_number=12)
        votes[higher.checkpoint_id] = (higher, {5})
        assert best_attested(votes, quorum=3) == high


def make_core(authority=0, n=4, interval=0, gc=0):
    committee = Committee.of_size(n)
    coin = FastCoin(seed=b"ckpt-test", n=n, threshold=committee.quorum_threshold)
    config = ProtocolConfig(
        wave_length=5,
        leaders_per_round=2,
        garbage_collection_depth=gc,
        checkpoint_interval_rounds=interval,
    )
    return MahiMahiCore(authority, committee, config, coin)


def drive_rounds(cores, rounds):
    """Propose lockstep rounds across all cores, committing as we go."""
    for _ in range(rounds):
        blocks = [core.maybe_propose() for core in cores]
        for core in cores:
            for block in blocks:
                if block is not None and block.author != core.authority:
                    core.add_block(block)
            core.try_commit()


class TestLedgerCapture:
    def test_disabled_ledger_still_chains(self):
        cores = [make_core(i) for i in range(4)]
        drive_rounds(cores, 12)
        ledgers = [core.committer.ledger for core in cores]
        assert all(ledger.captured_total == 0 for ledger in ledgers)
        assert ledgers[0].sequence_length > 0
        assert ledgers[0].chain != GENESIS_STATE
        assert len({ledger.chain for ledger in ledgers}) == 1

    def test_capture_is_identical_across_validators(self):
        cores = [make_core(i, interval=2) for i in range(4)]
        drive_rounds(cores, 14)
        ledgers = [core.committer.ledger for core in cores]
        assert ledgers[0].captured_total >= 2
        ids = [[c.checkpoint_id for c in ledger.checkpoints] for ledger in ledgers]
        assert all(seq == ids[0] for seq in ids)
        rounds = [c.round for c in ledgers[0].checkpoints]
        assert rounds == sorted(rounds)

    def test_retention_bounds_served_list(self):
        cores = [make_core(i, interval=1) for i in range(4)]
        drive_rounds(cores, 20)
        ledger = cores[0].committer.ledger
        assert ledger.captured_total > ledger.retain
        assert len(ledger.checkpoints) == ledger.retain

    def test_config_rejects_interval_beyond_gc_depth(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(garbage_collection_depth=4, checkpoint_interval_rounds=8)


class TestAdoption:
    def test_fresh_core_adopts_and_continues(self):
        cores = [make_core(i, interval=2) for i in range(4)]
        drive_rounds(cores, 14)
        checkpoint = cores[0].committer.ledger.checkpoints[-1]

        fresh = make_core(3, interval=2)
        fresh.adopt_checkpoint(checkpoint)
        assert fresh.store.sync_floor == checkpoint.floor
        assert fresh.round >= checkpoint.round
        assert fresh.committer.ledger.adopted_base == checkpoint
        assert fresh.committer.ledger.chain == checkpoint.chain
        # The adopted checkpoint is itself served to later recoverers.
        assert checkpoint in fresh.committer.ledger.checkpoints

    def test_non_fresh_core_refuses(self):
        cores = [make_core(i, interval=2) for i in range(4)]
        drive_rounds(cores, 14)
        checkpoint = cores[0].committer.ledger.checkpoints[-1]
        with pytest.raises(ReproError):
            cores[1].adopt_checkpoint(checkpoint)
