"""Tests for :mod:`repro.committee` — quorum arithmetic underpins every
decision rule, so these are exhaustive over the paper's committee sizes."""

import pytest

from repro.committee import Authority, Committee
from repro.errors import ConfigError


class TestThresholds:
    @pytest.mark.parametrize(
        "n,f", [(4, 1), (7, 2), (10, 3), (13, 4), (50, 16), (100, 33)]
    )
    def test_fault_tolerance(self, n, f):
        assert Committee.of_size(n).faults_tolerated == f

    @pytest.mark.parametrize("n", [4, 7, 10, 13, 31])
    def test_quorum_is_2f_plus_1_when_n_is_3f_plus_1(self, n):
        committee = Committee.of_size(n)
        assert committee.quorum_threshold == 2 * committee.faults_tolerated + 1

    @pytest.mark.parametrize("n", [5, 6, 50, 100])
    def test_quorum_is_n_minus_f_in_general(self, n):
        committee = Committee.of_size(n)
        assert committee.quorum_threshold == n - committee.faults_tolerated

    @pytest.mark.parametrize("n", [4, 7, 10, 13, 31, 50])
    def test_validity_is_f_plus_1(self, n):
        committee = Committee.of_size(n)
        assert committee.validity_threshold == committee.faults_tolerated + 1

    @pytest.mark.parametrize("n", [4, 7, 10, 13, 31, 50])
    def test_quorum_intersection_contains_honest_validator(self, n):
        """Two quorums overlap in at least f+1 validators — the property
        every safety lemma relies on."""
        committee = Committee.of_size(n)
        overlap = 2 * committee.quorum_threshold - n
        assert overlap >= committee.validity_threshold

    def test_paper_committee_sizes(self):
        small, large = Committee.of_size(10), Committee.of_size(50)
        assert small.quorum_threshold == 7
        assert large.quorum_threshold == 34  # n - f with n = 3f + 2


class TestMembership:
    def test_too_small_committee_rejected(self):
        for n in (1, 2, 3):
            with pytest.raises(ConfigError):
                Committee.of_size(n)

    def test_authority_lookup(self, committee4):
        authority = committee4.authority(2)
        assert authority.index == 2
        assert authority.name == "validator-2"

    def test_out_of_range_lookup_raises(self, committee4):
        with pytest.raises(ConfigError):
            committee4.authority(4)
        with pytest.raises(ConfigError):
            committee4.authority(-1)

    def test_is_member(self, committee4):
        assert committee4.is_member(0)
        assert committee4.is_member(3)
        assert not committee4.is_member(4)
        assert not committee4.is_member(-1)

    def test_iteration_and_len(self, committee4):
        assert len(committee4) == 4
        assert [a.index for a in committee4] == [0, 1, 2, 3]

    def test_unordered_authorities_rejected(self):
        """Member indexes must be strictly increasing (wire identities
        are stable; duplicates or reordering would corrupt lookups)."""
        with pytest.raises(ConfigError):
            Committee(
                authorities=tuple(
                    Authority(index=i, name=f"v{i}") for i in (0, 2, 1, 3)
                )
            )
        with pytest.raises(ConfigError):
            Committee(
                authorities=tuple(
                    Authority(index=i, name=f"v{i}") for i in (0, 1, 1, 2)
                )
            )

    def test_non_contiguous_members_allowed(self):
        """After a leave, the active committee covers a non-contiguous
        subset of wire identities with stable indexes."""
        committee = Committee.of_members((0, 1, 3, 5, 6))
        assert committee.size == 5
        assert committee.members == (0, 1, 3, 5, 6)
        assert committee.is_member(3) and not committee.is_member(2)
        assert not committee.is_contiguous
        assert committee.authority(5).name == "validator-5"
        with pytest.raises(ConfigError):
            committee.authority(2)

    def test_public_keys_attached(self):
        keys = [bytes([i]) * 4 for i in range(4)]
        committee = Committee.of_size(4, public_keys=keys)
        assert committee.authority(2).public_key == b"\x02\x02\x02\x02"

    def test_mismatched_key_count_rejected(self):
        with pytest.raises(ConfigError):
            Committee.of_size(4, public_keys=[b"x"] * 3)
