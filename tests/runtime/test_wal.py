"""Tests for the write-ahead log and crash recovery."""

import pytest

from repro.block import Block, make_genesis
from repro.errors import WalCorruptionError
from repro.runtime.wal import (
    RECORD_OWN_BLOCK,
    RECORD_PEER_BLOCK,
    WalRecord,
    WriteAheadLog,
)
from repro.transaction import Transaction


class TestAppendAndRead:
    def test_records_roundtrip(self, tmp_path):
        path = tmp_path / "test.wal"
        with WriteAheadLog(path) as wal:
            wal.append(RECORD_OWN_BLOCK, b"payload-1")
            wal.append(RECORD_PEER_BLOCK, b"payload-2")
        records = list(WriteAheadLog.read_records(path))
        assert records == [
            WalRecord(RECORD_OWN_BLOCK, b"payload-1"),
            WalRecord(RECORD_PEER_BLOCK, b"payload-2"),
        ]

    def test_blocks_roundtrip(self, tmp_path):
        path = tmp_path / "blocks.wal"
        genesis = make_genesis(4)
        with WriteAheadLog(path) as wal:
            wal.append_own_block(genesis[0])
            wal.append_peer_block(genesis[1])
            wal.append_commit_mark(17)
        own, peers, commit = WriteAheadLog.recover(path)
        assert own == [genesis[0]]
        assert peers == [genesis[1]]
        assert commit == 17

    def test_missing_file_yields_nothing(self, tmp_path):
        assert list(WriteAheadLog.read_records(tmp_path / "absent.wal")) == []

    def test_append_after_reopen(self, tmp_path):
        path = tmp_path / "reopen.wal"
        with WriteAheadLog(path) as wal:
            wal.append(RECORD_OWN_BLOCK, b"first")
        with WriteAheadLog(path) as wal:
            wal.append(RECORD_OWN_BLOCK, b"second")
        payloads = [r.payload for r in WriteAheadLog.read_records(path)]
        assert payloads == [b"first", b"second"]

    def test_highest_commit_mark_wins(self, tmp_path):
        path = tmp_path / "marks.wal"
        with WriteAheadLog(path) as wal:
            wal.append_commit_mark(5)
            wal.append_commit_mark(9)
            wal.append_commit_mark(7)
        _, _, commit = WriteAheadLog.recover(path)
        assert commit == 9


class TestCrashTolerance:
    def write_then_truncate(self, path, cut):
        with WriteAheadLog(path) as wal:
            wal.append(RECORD_OWN_BLOCK, b"intact-record")
            wal.append(RECORD_PEER_BLOCK, b"doomed-record")
        data = path.read_bytes()
        path.write_bytes(data[:-cut])

    def test_truncated_tail_discarded(self, tmp_path):
        path = tmp_path / "torn.wal"
        self.write_then_truncate(path, cut=4)
        records = list(WriteAheadLog.read_records(path))
        assert [r.payload for r in records] == [b"intact-record"]

    def test_truncated_tail_strict_raises(self, tmp_path):
        path = tmp_path / "torn.wal"
        self.write_then_truncate(path, cut=4)
        with pytest.raises(WalCorruptionError):
            list(WriteAheadLog.read_records(path, strict=True))

    def test_corrupt_crc_discarded(self, tmp_path):
        path = tmp_path / "flipped.wal"
        with WriteAheadLog(path) as wal:
            wal.append(RECORD_OWN_BLOCK, b"good")
            wal.append(RECORD_OWN_BLOCK, b"bad-crc")
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte of the last record
        path.write_bytes(bytes(data))
        records = list(WriteAheadLog.read_records(path))
        assert [r.payload for r in records] == [b"good"]

    def test_corrupt_crc_strict_raises(self, tmp_path):
        path = tmp_path / "flipped.wal"
        with WriteAheadLog(path) as wal:
            wal.append(RECORD_OWN_BLOCK, b"payload")
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError):
            list(WriteAheadLog.read_records(path, strict=True))

    def test_recovery_after_partial_header(self, tmp_path):
        path = tmp_path / "header.wal"
        with WriteAheadLog(path) as wal:
            wal.append(RECORD_OWN_BLOCK, b"complete")
        with open(path, "ab") as handle:
            handle.write(b"\x05\x00")  # 2 bytes of a 9-byte header
        records = list(WriteAheadLog.read_records(path))
        assert [r.payload for r in records] == [b"complete"]

    def test_mid_file_corruption_discards_the_rest(self, tmp_path):
        """Non-strict reads stop at the first bad record even when valid
        bytes follow: everything after an unreadable record is
        unreachable (record boundaries cannot be re-synchronized)."""
        path = tmp_path / "mid.wal"
        with WriteAheadLog(path) as wal:
            wal.append(RECORD_OWN_BLOCK, b"first")
            wal.append(RECORD_PEER_BLOCK, b"second")
            wal.append(RECORD_PEER_BLOCK, b"third")
        data = bytearray(path.read_bytes())
        # Flip a byte inside the *second* record's payload.
        offset = data.index(b"second")
        data[offset] ^= 0xFF
        path.write_bytes(bytes(data))
        records = list(WriteAheadLog.read_records(path))
        assert [r.payload for r in records] == [b"first"]
        with pytest.raises(WalCorruptionError, match="CRC mismatch"):
            list(WriteAheadLog.read_records(path, strict=True))

    def test_strict_reports_offset_of_damage(self, tmp_path):
        path = tmp_path / "offsets.wal"
        with WriteAheadLog(path) as wal:
            wal.append(RECORD_OWN_BLOCK, b"x" * 10)
        intact = path.read_bytes()
        path.write_bytes(intact[:-3])
        with pytest.raises(WalCorruptionError, match="truncated record at offset 0"):
            list(WriteAheadLog.read_records(path, strict=True))

    def test_strict_accepts_clean_log(self, tmp_path):
        path = tmp_path / "clean.wal"
        with WriteAheadLog(path) as wal:
            wal.append(RECORD_OWN_BLOCK, b"a")
            wal.append(RECORD_PEER_BLOCK, b"b")
        records = list(WriteAheadLog.read_records(path, strict=True))
        assert [r.payload for r in records] == [b"a", b"b"]


class TestRecoverMixedSizes:
    def mixed_block(self, author, round_number, parents):
        """A block carrying the tx_size_mix shape: mostly-small payloads
        with a heavy tail, like the mixed-workload sweeps produce."""
        sizes = (128, 128, 512, 4096)
        return Block(
            author=author,
            round=round_number,
            parents=parents,
            transactions=tuple(
                Transaction.dummy(tx_id=round_number * 10 + i, size=size)
                for i, size in enumerate(sizes)
            ),
        )

    def test_recover_roundtrips_mixed_size_blocks(self, tmp_path):
        genesis = make_genesis(4)
        parents = tuple(b.reference for b in genesis)
        own = self.mixed_block(0, 1, parents)
        peers = [self.mixed_block(author, 1, parents) for author in (1, 2)]
        path = tmp_path / "mixed.wal"
        with WriteAheadLog(path) as wal:
            wal.append_own_block(own)
            for block in peers:
                wal.append_peer_block(block)
            wal.append_commit_mark(1)
        recovered_own, recovered_peers, commit = WriteAheadLog.recover(path)
        assert recovered_own == [own]
        assert recovered_peers == peers
        assert commit == 1
        # Digests (and hence DAG identity) survive the round trip, and
        # so do the heterogeneous payload sizes.
        assert [b.digest for b in recovered_peers] == [b.digest for b in peers]
        for original, replayed in zip([own, *peers], recovered_own + recovered_peers):
            assert [t.size for t in replayed.transactions] == [
                t.size for t in original.transactions
            ]

    def test_recover_tolerates_torn_mixed_tail(self, tmp_path):
        genesis = make_genesis(4)
        parents = tuple(b.reference for b in genesis)
        intact = self.mixed_block(0, 1, parents)
        doomed = self.mixed_block(1, 1, parents)
        path = tmp_path / "torn-mixed.wal"
        with WriteAheadLog(path) as wal:
            wal.append_own_block(intact)
            wal.append_peer_block(doomed)
        data = path.read_bytes()
        path.write_bytes(data[:-100])  # tear mid-way through the tail block
        own, peers, commit = WriteAheadLog.recover(path)
        assert own == [intact]
        assert peers == []
        assert commit == -1
