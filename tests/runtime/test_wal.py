"""Tests for the write-ahead log and crash recovery."""

import pytest

from repro.block import make_genesis
from repro.errors import WalCorruptionError
from repro.runtime.wal import (
    RECORD_OWN_BLOCK,
    RECORD_PEER_BLOCK,
    WalRecord,
    WriteAheadLog,
)


class TestAppendAndRead:
    def test_records_roundtrip(self, tmp_path):
        path = tmp_path / "test.wal"
        with WriteAheadLog(path) as wal:
            wal.append(RECORD_OWN_BLOCK, b"payload-1")
            wal.append(RECORD_PEER_BLOCK, b"payload-2")
        records = list(WriteAheadLog.read_records(path))
        assert records == [
            WalRecord(RECORD_OWN_BLOCK, b"payload-1"),
            WalRecord(RECORD_PEER_BLOCK, b"payload-2"),
        ]

    def test_blocks_roundtrip(self, tmp_path):
        path = tmp_path / "blocks.wal"
        genesis = make_genesis(4)
        with WriteAheadLog(path) as wal:
            wal.append_own_block(genesis[0])
            wal.append_peer_block(genesis[1])
            wal.append_commit_mark(17)
        own, peers, commit = WriteAheadLog.recover(path)
        assert own == [genesis[0]]
        assert peers == [genesis[1]]
        assert commit == 17

    def test_missing_file_yields_nothing(self, tmp_path):
        assert list(WriteAheadLog.read_records(tmp_path / "absent.wal")) == []

    def test_append_after_reopen(self, tmp_path):
        path = tmp_path / "reopen.wal"
        with WriteAheadLog(path) as wal:
            wal.append(RECORD_OWN_BLOCK, b"first")
        with WriteAheadLog(path) as wal:
            wal.append(RECORD_OWN_BLOCK, b"second")
        payloads = [r.payload for r in WriteAheadLog.read_records(path)]
        assert payloads == [b"first", b"second"]

    def test_highest_commit_mark_wins(self, tmp_path):
        path = tmp_path / "marks.wal"
        with WriteAheadLog(path) as wal:
            wal.append_commit_mark(5)
            wal.append_commit_mark(9)
            wal.append_commit_mark(7)
        _, _, commit = WriteAheadLog.recover(path)
        assert commit == 9


class TestCrashTolerance:
    def write_then_truncate(self, path, cut):
        with WriteAheadLog(path) as wal:
            wal.append(RECORD_OWN_BLOCK, b"intact-record")
            wal.append(RECORD_PEER_BLOCK, b"doomed-record")
        data = path.read_bytes()
        path.write_bytes(data[:-cut])

    def test_truncated_tail_discarded(self, tmp_path):
        path = tmp_path / "torn.wal"
        self.write_then_truncate(path, cut=4)
        records = list(WriteAheadLog.read_records(path))
        assert [r.payload for r in records] == [b"intact-record"]

    def test_truncated_tail_strict_raises(self, tmp_path):
        path = tmp_path / "torn.wal"
        self.write_then_truncate(path, cut=4)
        with pytest.raises(WalCorruptionError):
            list(WriteAheadLog.read_records(path, strict=True))

    def test_corrupt_crc_discarded(self, tmp_path):
        path = tmp_path / "flipped.wal"
        with WriteAheadLog(path) as wal:
            wal.append(RECORD_OWN_BLOCK, b"good")
            wal.append(RECORD_OWN_BLOCK, b"bad-crc")
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte of the last record
        path.write_bytes(bytes(data))
        records = list(WriteAheadLog.read_records(path))
        assert [r.payload for r in records] == [b"good"]

    def test_corrupt_crc_strict_raises(self, tmp_path):
        path = tmp_path / "flipped.wal"
        with WriteAheadLog(path) as wal:
            wal.append(RECORD_OWN_BLOCK, b"payload")
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError):
            list(WriteAheadLog.read_records(path, strict=True))

    def test_recovery_after_partial_header(self, tmp_path):
        path = tmp_path / "header.wal"
        with WriteAheadLog(path) as wal:
            wal.append(RECORD_OWN_BLOCK, b"complete")
        with open(path, "ab") as handle:
            handle.write(b"\x05\x00")  # 2 bytes of a 9-byte header
        records = list(WriteAheadLog.read_records(path))
        assert [r.payload for r in records] == [b"complete"]
