"""Tests for the runtime wire format."""

import pytest

from repro.block import Block, make_genesis
from repro.crypto.coin import CoinShare
from repro.errors import TransportError
from repro.runtime.messages import (
    BlockMessage,
    FetchRequest,
    FetchResponse,
    MAX_FRAME,
    decode_message,
    encode_message,
    frame,
)
from repro.transaction import Transaction


def sample_block():
    genesis = make_genesis(4)
    return Block(
        author=2,
        round=1,
        parents=tuple(b.reference for b in genesis),
        transactions=(Transaction.dummy(5),),
        coin_share=CoinShare(author=2, round=1, value=b"\x33" * 32),
        signature=b"signature",
    )


class TestRoundtrips:
    def test_block_message(self):
        message = BlockMessage(block=sample_block())
        decoded = decode_message(encode_message(message))
        assert decoded == message
        assert decoded.block.digest == message.block.digest

    def test_fetch_request(self):
        refs = tuple(b.reference for b in make_genesis(4))
        decoded = decode_message(encode_message(FetchRequest(refs=refs)))
        assert decoded == FetchRequest(refs=refs)

    def test_empty_fetch_request(self):
        decoded = decode_message(encode_message(FetchRequest(refs=())))
        assert decoded.refs == ()

    def test_fetch_response(self):
        blocks = (sample_block(), *make_genesis(2))
        decoded = decode_message(encode_message(FetchResponse(blocks=blocks)))
        assert decoded == FetchResponse(blocks=blocks)


class TestErrors:
    def test_empty_buffer_rejected(self):
        with pytest.raises(TransportError):
            decode_message(b"")

    def test_unknown_kind_rejected(self):
        with pytest.raises(TransportError):
            decode_message(b"\xff\x00\x00")

    def test_oversized_frame_rejected(self):
        with pytest.raises(TransportError):
            frame(b"\x00" * (MAX_FRAME + 1))

    def test_frame_prefixes_length(self):
        framed = frame(b"abc")
        assert framed[:4] == (3).to_bytes(4, "little")
        assert framed[4:] == b"abc"
