"""Tests for the runtime wire format."""

import pytest

from repro.block import Block, make_genesis
from repro.crypto.coin import CoinShare
from repro.errors import TransportError
from repro.runtime.messages import (
    BlockMessage,
    CheckpointRequest,
    CheckpointResponse,
    FetchRequest,
    FetchResponse,
    MAX_FRAME,
    SyncRequest,
    SyncResponse,
    TransactionMessage,
    decode_message,
    encode_message,
    frame,
)
from repro.statesync import Checkpoint
from repro.transaction import Transaction


def sample_block():
    genesis = make_genesis(4)
    return Block(
        author=2,
        round=1,
        parents=tuple(b.reference for b in genesis),
        transactions=(Transaction.dummy(5),),
        coin_share=CoinShare(author=2, round=1, value=b"\x33" * 32),
        signature=b"signature",
    )


class TestRoundtrips:
    def test_block_message(self):
        message = BlockMessage(block=sample_block())
        decoded = decode_message(encode_message(message))
        assert decoded == message
        assert decoded.block.digest == message.block.digest

    def test_fetch_request(self):
        refs = tuple(b.reference for b in make_genesis(4))
        decoded = decode_message(encode_message(FetchRequest(refs=refs)))
        assert decoded == FetchRequest(refs=refs)

    def test_empty_fetch_request(self):
        decoded = decode_message(encode_message(FetchRequest(refs=())))
        assert decoded.refs == ()

    def test_fetch_response(self):
        blocks = (sample_block(), *make_genesis(2))
        decoded = decode_message(encode_message(FetchResponse(blocks=blocks)))
        assert decoded == FetchResponse(blocks=blocks)

    def test_checkpoint_request(self):
        decoded = decode_message(encode_message(CheckpointRequest()))
        assert decoded == CheckpointRequest()

    def test_checkpoint_response(self):
        checkpoint = Checkpoint(
            round=24,
            floor=8,
            next_slot=(25, 1),
            chain=b"\x11" * 32,
            sequence_length=37,
            committee_size=4,
            linearized=tuple(b.reference for b in make_genesis(3)),
            epochs=((0, 0, (0, 1, 2, 3)), (1, 40, (0, 1, 2, 3, 4))),
        )
        message = CheckpointResponse(checkpoints=(checkpoint,))
        decoded = decode_message(encode_message(message))
        assert decoded == message
        # Adoption matches on the content address, so it must survive
        # the trip byte-for-byte.
        assert decoded.checkpoints[0].checkpoint_id == checkpoint.checkpoint_id

    def test_sync_request(self):
        refs = tuple(b.reference for b in make_genesis(4))
        message = SyncRequest(refs=refs, floor=12, token=0xDEADBEEF)
        assert decode_message(encode_message(message)) == message

    def test_sync_request_negative_floor(self):
        # Floor is signed: "no horizon yet" is expressed as -1.
        message = SyncRequest(refs=(), floor=-1, token=1)
        assert decode_message(encode_message(message)) == message

    def test_sync_response(self):
        genesis = make_genesis(4)
        message = SyncResponse(
            blocks=(sample_block(),),
            pruned=(genesis[0].reference, genesis[2].reference),
            token=7,
        )
        assert decode_message(encode_message(message)) == message

    def test_transaction_message(self):
        transactions = (
            Transaction.dummy(1, submitted_at=123.5),
            Transaction(tx_id=2, payload=b"reconfig-ish"),
        )
        message = TransactionMessage(transactions=transactions)
        decoded = decode_message(encode_message(message))
        assert decoded == message
        assert decoded.transactions[0].submitted_at == 123.5


class TestErrors:
    def test_empty_buffer_rejected(self):
        with pytest.raises(TransportError):
            decode_message(b"")

    def test_unknown_kind_rejected(self):
        with pytest.raises(TransportError):
            decode_message(b"\xff\x00\x00")

    def test_oversized_frame_rejected(self):
        with pytest.raises(TransportError):
            frame(b"\x00" * (MAX_FRAME + 1))

    def test_frame_prefixes_length(self):
        framed = frame(b"abc")
        assert framed[:4] == (3).to_bytes(4, "little")
        assert framed[4:] == b"abc"
