"""Integration tests for the asyncio runtime.

These run real multi-validator clusters in-process — the "asyncio
prototype works" bar: transactions commit, all validators agree, crash
recovery via the WAL works, and the synchronizer repairs gaps.
"""

import asyncio

import pytest

from repro.config import ProtocolConfig
from repro.crypto.schnorr import SchnorrSignatureScheme
from repro.runtime.cluster import LocalCluster
from repro.transaction import Transaction


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


@pytest.mark.slow
class TestMemoryCluster:
    def test_transactions_commit(self):
        async def scenario():
            async with LocalCluster(n=4) as cluster:
                for i in range(10):
                    cluster.submit(Transaction.dummy(i + 1), validator=i % 4)
                blocks = await cluster.wait_for_commits(20)
                committed = {tx.tx_id for b in blocks for tx in b.transactions}
                assert set(range(1, 11)) <= committed

        run(scenario())

    def test_all_validators_agree(self):
        async def scenario():
            async with LocalCluster(n=4) as cluster:
                cluster.submit(Transaction.dummy(1))
                await cluster.wait_for_commits(30, validator=0)
                sequences = [
                    [b.digest for b in node.committed_blocks]
                    for node in cluster.nodes
                ]
                shortest = min(len(s) for s in sequences)
                assert shortest > 0
                for sequence in sequences:
                    assert sequence[:shortest] == sequences[0][:shortest]

        run(scenario())

    def test_wave_length_4_cluster(self):
        async def scenario():
            config = ProtocolConfig(wave_length=4, leaders_per_round=2)
            async with LocalCluster(n=4, config=config) as cluster:
                cluster.submit(Transaction.dummy(7))
                await cluster.wait_for_transaction(7)

        run(scenario())

    def test_schnorr_signed_cluster(self):
        """Full public-key crypto end to end (slower, 4 validators)."""

        async def scenario():
            async with LocalCluster(
                n=4, signature_scheme=SchnorrSignatureScheme()
            ) as cluster:
                cluster.submit(Transaction.dummy(3))
                await cluster.wait_for_transaction(3, timeout=45)

        run(scenario())

    def test_threshold_coin_cluster(self):
        """The verifiable threshold coin end to end."""

        async def scenario():
            async with LocalCluster(n=4, threshold_coin=True) as cluster:
                cluster.submit(Transaction.dummy(4))
                await cluster.wait_for_transaction(4, timeout=45)

        run(scenario())

    def test_commit_queue_surfaces_observations(self):
        async def scenario():
            async with LocalCluster(n=4) as cluster:
                observation = await asyncio.wait_for(
                    cluster.nodes[0].commits.get(), timeout=30
                )
                assert observation.status.is_decided

        run(scenario())


@pytest.mark.slow
class TestTcpCluster:
    def test_transactions_commit_over_tcp(self):
        async def scenario():
            async with LocalCluster(n=4, transport="tcp", base_port=29500) as cluster:
                cluster.submit(Transaction.dummy(11), validator=1)
                await cluster.wait_for_transaction(11)

        run(scenario())


@pytest.mark.slow
class TestCrashRecovery:
    def test_validator_recovers_from_wal(self, tmp_path):
        async def scenario():
            cluster = LocalCluster(n=4, wal_dir=tmp_path)
            await cluster.start()
            try:
                cluster.submit(Transaction.dummy(21))
                await cluster.wait_for_transaction(21)
            finally:
                await cluster.stop()

            # Restart validator 0 from its log alone.
            node = cluster.nodes[0]
            recovered_round = node.core.round
            fresh = LocalCluster(n=4, wal_dir=tmp_path)
            restarted = fresh.nodes[0]
            restarted._recover()
            assert restarted.core.round >= recovered_round
            assert restarted.core.store.highest_round >= recovered_round
            committed = {
                tx.tx_id
                for b in restarted.core.committed_blocks()
                for tx in b.transactions
            }
            assert 21 in committed

        run(scenario())

    def test_recovered_validator_does_not_equivocate(self, tmp_path):
        """After recovery, the validator proposes above its logged rounds
        — re-proposing a logged round would be equivocation."""

        async def scenario():
            cluster = LocalCluster(n=4, wal_dir=tmp_path)
            await cluster.start()
            try:
                await cluster.wait_for_commits(5)
            finally:
                await cluster.stop()
            logged_round = cluster.nodes[2].core.round

            fresh = LocalCluster(n=4, wal_dir=tmp_path)
            restarted = fresh.nodes[2]
            restarted._recover()
            block = restarted.core.maybe_propose()
            if block is not None:
                assert block.round > logged_round

        run(scenario())


@pytest.mark.slow
class TestSynchronizerIntegration:
    def test_late_joiner_catches_up(self):
        """A validator started late fetches missing history and commits."""

        async def scenario():
            cluster = LocalCluster(n=4)
            await cluster.start(validators=[0, 1, 2])
            try:
                cluster.submit(Transaction.dummy(31))
                await cluster.wait_for_transaction(31)
                # Validator 3 joins; the synchronizer must backfill.
                await cluster.nodes[3].start()
                await cluster.wait_for_transaction(31, validator=3, timeout=30)
            finally:
                await cluster.stop()

        run(scenario())
