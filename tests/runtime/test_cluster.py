"""Integration tests for the asyncio runtime.

These run real multi-validator clusters in-process — the "asyncio
prototype works" bar: transactions commit, all validators agree, crash
recovery via the WAL works, and the synchronizer repairs gaps.
"""

import asyncio

import pytest

from repro.config import ProtocolConfig
from repro.crypto.schnorr import SchnorrSignatureScheme
from repro.runtime.cluster import LocalCluster
from repro.transaction import Transaction


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


@pytest.mark.slow
class TestMemoryCluster:
    def test_transactions_commit(self):
        async def scenario():
            async with LocalCluster(n=4) as cluster:
                for i in range(10):
                    cluster.submit(Transaction.dummy(i + 1), validator=i % 4)
                blocks = await cluster.wait_for_commits(20)
                committed = {tx.tx_id for b in blocks for tx in b.transactions}
                assert set(range(1, 11)) <= committed

        run(scenario())

    def test_all_validators_agree(self):
        async def scenario():
            async with LocalCluster(n=4) as cluster:
                cluster.submit(Transaction.dummy(1))
                await cluster.wait_for_commits(30, validator=0)
                sequences = [
                    [b.digest for b in node.committed_blocks]
                    for node in cluster.nodes
                ]
                shortest = min(len(s) for s in sequences)
                assert shortest > 0
                for sequence in sequences:
                    assert sequence[:shortest] == sequences[0][:shortest]

        run(scenario())

    def test_wave_length_4_cluster(self):
        async def scenario():
            config = ProtocolConfig(wave_length=4, leaders_per_round=2)
            async with LocalCluster(n=4, config=config) as cluster:
                cluster.submit(Transaction.dummy(7))
                await cluster.wait_for_transaction(7)

        run(scenario())

    def test_schnorr_signed_cluster(self):
        """Full public-key crypto end to end (slower, 4 validators)."""

        async def scenario():
            async with LocalCluster(
                n=4, signature_scheme=SchnorrSignatureScheme()
            ) as cluster:
                cluster.submit(Transaction.dummy(3))
                await cluster.wait_for_transaction(3, timeout=45)

        run(scenario())

    def test_threshold_coin_cluster(self):
        """The verifiable threshold coin end to end."""

        async def scenario():
            async with LocalCluster(n=4, threshold_coin=True) as cluster:
                cluster.submit(Transaction.dummy(4))
                await cluster.wait_for_transaction(4, timeout=45)

        run(scenario())

    def test_commit_queue_surfaces_observations(self):
        async def scenario():
            async with LocalCluster(n=4) as cluster:
                observation = await asyncio.wait_for(
                    cluster.nodes[0].commits.get(), timeout=30
                )
                assert observation.status.is_decided

        run(scenario())


@pytest.mark.slow
class TestTcpCluster:
    def test_transactions_commit_over_tcp(self):
        async def scenario():
            async with LocalCluster(n=4, transport="tcp", base_port=29500) as cluster:
                cluster.submit(Transaction.dummy(11), validator=1)
                await cluster.wait_for_transaction(11)

        run(scenario())


@pytest.mark.slow
class TestCrashRecovery:
    def test_validator_recovers_from_wal(self, tmp_path):
        async def scenario():
            cluster = LocalCluster(n=4, wal_dir=tmp_path)
            await cluster.start()
            try:
                cluster.submit(Transaction.dummy(21))
                await cluster.wait_for_transaction(21)
            finally:
                await cluster.stop()

            # Restart validator 0 from its log alone.
            node = cluster.nodes[0]
            recovered_round = node.core.round
            fresh = LocalCluster(n=4, wal_dir=tmp_path)
            restarted = fresh.nodes[0]
            restarted._recover()
            assert restarted.core.round >= recovered_round
            assert restarted.core.store.highest_round >= recovered_round
            committed = {
                tx.tx_id
                for b in restarted.core.committed_blocks()
                for tx in b.transactions
            }
            assert 21 in committed

        run(scenario())

    def test_recovered_validator_does_not_equivocate(self, tmp_path):
        """After recovery, the validator proposes above its logged rounds
        — re-proposing a logged round would be equivocation."""

        async def scenario():
            cluster = LocalCluster(n=4, wal_dir=tmp_path)
            await cluster.start()
            try:
                await cluster.wait_for_commits(5)
            finally:
                await cluster.stop()
            logged_round = cluster.nodes[2].core.round

            fresh = LocalCluster(n=4, wal_dir=tmp_path)
            restarted = fresh.nodes[2]
            restarted._recover()
            block = restarted.core.maybe_propose()
            if block is not None:
                assert block.round > logged_round

        run(scenario())


@pytest.mark.slow
class TestRecoveryModes:
    """Live restarts through :meth:`LocalCluster.restart` in each of the
    three recovery modes, with the rest of the committee still running."""

    def test_cold_restart_refetches_history(self, tmp_path):
        async def scenario():
            async with LocalCluster(n=4, wal_dir=tmp_path) as cluster:
                await cluster.wait_for_commits(10)
                await cluster.nodes[3].stop()
                await _survivors_ahead_of(cluster, cluster.nodes[3])
                node = await cluster.restart(3, recover_mode="cold")
                await _wait(lambda: node.recovery_time is not None)
                assert node.recovery_mode_used == "cold"
                assert node.recovery_error is None
                # A cold restart starts empty and must rebuild from peers.
                await cluster.wait_for_commits(25, validator=3)

        run(scenario())

    def test_warm_restart_replays_wal_then_syncs(self, tmp_path):
        async def scenario():
            async with LocalCluster(n=4, wal_dir=tmp_path) as cluster:
                await cluster.wait_for_commits(10)
                await cluster.nodes[3].stop()
                before = len(cluster.nodes[3].committed_blocks)
                await cluster.wait_for_commits(20)
                node = await cluster.restart(3, recover_mode="warm")
                await _wait(lambda: node.recovery_time is not None)
                assert node.recovery_mode_used == "warm"
                assert node.recovery_error is None
                # The WAL seeded it at least to where it left off (the
                # commit queue drains just after recovery is stamped).
                await _wait(lambda: len(node.committed_blocks) >= before)
                await cluster.wait_for_commits(25, validator=3)

        run(scenario())

    def test_warm_restart_on_empty_wal_degenerates_to_cold(self, tmp_path):
        async def scenario():
            async with LocalCluster(n=4, wal_dir=tmp_path) as cluster:
                await cluster.wait_for_commits(10)
                await cluster.nodes[3].stop()
                (tmp_path / "validator-3.wal").unlink()
                # Open a gap wide enough that the restarted node detects
                # it has fallen behind (that detection is what stamps
                # recovery_time on a cold path).
                await _survivors_ahead_of(cluster, cluster.nodes[3])
                node = await cluster.restart(3, recover_mode="warm")
                await _wait(lambda: node.recovery_time is not None)
                assert node.recovery_mode_used == "cold"
                assert node.recovery_error is None

        run(scenario())

    def test_checkpoint_restart_adopts_attested_base(self, tmp_path):
        """With GC on, a long-dead validator cannot refetch to genesis:
        it must adopt a ``2f + 1``-attested checkpoint and fetch only the
        suffix above the transferred floor."""

        async def scenario():
            config = ProtocolConfig(
                wave_length=5,
                leaders_per_round=2,
                garbage_collection_depth=64,
                checkpoint_interval_rounds=10,
            )
            async with LocalCluster(n=4, config=config, wal_dir=tmp_path) as cluster:
                await cluster.wait_for_commits(30)
                await cluster.nodes[3].stop()
                # Let the survivors race far ahead so validator 3's old
                # frontier falls behind their GC horizon.
                target = len(cluster.nodes[0].committed_blocks) + 120
                await cluster.wait_for_commits(target, timeout=60)
                node = await cluster.restart(3, recover_mode="checkpoint")
                await _wait(lambda: node.recovery_time is not None, timeout=30)
                assert node.recovery_mode_used == "checkpoint"
                assert node.recovery_error is None
                ledger = node.core.committer.ledger
                assert ledger.adopted_base is not None
                # Post-adoption commits extend the transferred state.
                resumed = len(node.committed_blocks)
                await _wait(lambda: len(node.committed_blocks) > resumed)
                # The suffix it commits agrees with a survivor's sequence.
                survivor = cluster.nodes[0].committed_blocks
                digests = {b.digest for b in survivor}
                assert all(b.digest in digests for b in node.committed_blocks[-5:])

        run(scenario())


async def _wait(condition, timeout: float = 20.0):
    async def poll():
        while not condition():
            await asyncio.sleep(0.01)

    await asyncio.wait_for(poll(), timeout)


async def _survivors_ahead_of(cluster, stopped, waves: int = 3):
    """Wait until the running committee's rounds are far enough past the
    stopped node's frontier that a restart will detect it has fallen
    behind (the detection threshold is two waves)."""
    target = stopped.core.round + waves * cluster.config.wave_length
    await _wait(lambda: cluster.nodes[0].core.round > target)


@pytest.mark.slow
class TestProcessCluster:
    def test_multiprocess_kill_and_warm_recovery(self, tmp_path):
        """The multi-process harness end to end (short): real processes
        on real sockets, ``kill -9``, warm restart, and byte-identical
        commit prefixes across every incarnation."""

        async def scenario():
            from repro.runtime.process_cluster import ProcessCluster

            cluster = ProcessCluster(
                4,
                base_port=29710,
                run_dir=tmp_path,
                config={"wave_length": 5, "leaders_per_round": 2},
                min_block_interval=0.02,
            )
            async with cluster:
                steady = await cluster.wait_status(
                    0, lambda s: s["committed_blocks"] > 10, what="steady commits"
                )
                # The status JSON carries the live committee view and a
                # metrics-registry snapshot (telemetry consumers key on
                # these).
                assert steady["epoch"] == 0
                assert steady["committee_size"] == 4
                assert steady["metrics"]["blocks_committed"] > 0
                assert steady["metrics"]["transport_frames_sent"] > 0
                cluster.kill(3)
                await asyncio.sleep(0.5)
                await cluster.restart(3, recover_mode="warm")
                status = await cluster.wait_status(
                    3,
                    lambda s: s["recovery_time"] is not None
                    and s["recovery_error"] is None,
                    what="warm recovery",
                )
                assert status["recovery_mode_used"] == "warm"
            assert cluster.assert_consistent_prefixes() > 0

        asyncio.run(asyncio.wait_for(scenario(), timeout=120))


@pytest.mark.slow
class TestSynchronizerIntegration:
    def test_late_joiner_catches_up(self):
        """A validator started late fetches missing history and commits."""

        async def scenario():
            cluster = LocalCluster(n=4)
            await cluster.start(validators=[0, 1, 2])
            try:
                cluster.submit(Transaction.dummy(31))
                await cluster.wait_for_transaction(31)
                # Validator 3 joins; the synchronizer must backfill.
                await cluster.nodes[3].start()
                await cluster.wait_for_transaction(31, validator=3, timeout=30)
            finally:
                await cluster.stop()

        run(scenario())
