"""Unit tests for the missing-ancestor synchronizer."""

import asyncio

import pytest

from repro.block import make_genesis
from repro.runtime.messages import FetchRequest
from repro.runtime.synchronizer import BATCH, RETRY_AFTER, Synchronizer
from repro.runtime.transport import Transport


class RecordingTransport(Transport):
    """Captures outgoing messages instead of sending them."""

    def __init__(self, authority=0):
        super().__init__(authority)
        self.sent: list[tuple[int, object]] = []

    async def start(self):  # pragma: no cover - unused
        pass

    async def stop(self):  # pragma: no cover - unused
        pass

    async def send(self, dst, message):
        self.sent.append((dst, message))


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def refs():
    return tuple(b.reference for b in make_genesis(4))


class TestFetching:
    def test_first_request_goes_to_sender(self, refs):
        transport = RecordingTransport()
        sync = Synchronizer(transport, committee_size=4)
        sync.note_missing(refs[:1], sender=2)
        run(sync.tick(now=100.0))
        assert transport.sent == [(2, FetchRequest(refs=refs[:1]))]

    def test_no_duplicate_requests_within_retry_window(self, refs):
        transport = RecordingTransport()
        sync = Synchronizer(transport, committee_size=4)
        sync.note_missing(refs[:1], sender=2)
        run(sync.tick(now=100.0))
        run(sync.tick(now=100.0 + RETRY_AFTER / 2))
        assert len(transport.sent) == 1

    def test_retry_rotates_to_block_author(self, refs):
        transport = RecordingTransport()
        sync = Synchronizer(transport, committee_size=4)
        sync.note_missing(refs[3:4], sender=2)  # block authored by 3
        run(sync.tick(now=100.0))
        run(sync.tick(now=100.0 + RETRY_AFTER + 0.01))
        assert [dst for dst, _ in transport.sent] == [2, 3]

    def test_arrival_cancels_fetch(self, refs):
        transport = RecordingTransport()
        sync = Synchronizer(transport, committee_size=4)
        sync.note_missing(refs[:2], sender=1)
        sync.note_arrived(refs[0].digest)
        run(sync.tick(now=100.0))
        assert sync.missing == 1
        [(dst, request)] = transport.sent
        assert request.refs == refs[1:2]

    def test_batching_splits_large_requests(self):
        transport = RecordingTransport()
        sync = Synchronizer(transport, committee_size=4)
        # Build more unique refs than one batch holds.
        from repro.block import Block

        unique = tuple(
            Block(author=0, round=0, parents=(), salt=str(i).encode()).reference
            for i in range(BATCH + 10)
        )
        sync.note_missing(unique, sender=1)
        run(sync.tick(now=50.0))
        sizes = [len(request.refs) for _, request in transport.sent]
        assert sum(sizes) == BATCH + 10
        assert max(sizes) <= BATCH

    def test_note_missing_is_idempotent(self, refs):
        transport = RecordingTransport()
        sync = Synchronizer(transport, committee_size=4)
        sync.note_missing(refs[:1], sender=1)
        sync.note_missing(refs[:1], sender=3)  # second report ignored
        assert sync.missing == 1
        run(sync.tick(now=10.0))
        assert transport.sent[0][0] == 1
