"""TCP transport edge cases: framing, disconnects, reconnects, backoff.

The protocol survives arbitrary message loss (the synchronizer repairs
gaps), but the transport must fail *cleanly*: a malformed or truncated
stream ends that connection only, a restarted peer is re-dialed
transparently, and concurrent senders never interleave bytes inside a
frame.
"""

import asyncio
import struct

import pytest

from repro.runtime.messages import (
    MAX_FRAME,
    BlockMessage,
    FetchRequest,
    encode_message,
    frame,
)
from repro.runtime.transport import (
    DIAL_BACKOFF_BASE,
    DIAL_BACKOFF_CAP,
    TcpTransport,
)
from tests.runtime.test_messages import sample_block

BASE_PORT = 29500


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


def addresses(*validators: int, port: int = BASE_PORT) -> dict:
    return {v: ("127.0.0.1", port + v) for v in validators}


async def started_transport(authority: int, addrs: dict) -> tuple[TcpTransport, list]:
    transport = TcpTransport(authority, addrs)
    received: list = []

    async def handler(sender, message):
        received.append((sender, message))

    transport.on_message(handler)
    await transport.start()
    return transport, received


async def wait_for(condition, timeout: float = 10.0) -> None:
    deadline = asyncio.get_running_loop().time() + timeout
    while not condition():
        if asyncio.get_running_loop().time() > deadline:
            raise TimeoutError("condition never became true")
        await asyncio.sleep(0.01)


class TestFraming:
    def test_oversized_frame_closes_connection_only(self):
        """A length prefix beyond MAX_FRAME must kill that connection,
        not the transport: honest peers keep getting served."""

        async def scenario():
            addrs = addresses(0, 1, port=BASE_PORT)
            server, received = await started_transport(0, addrs)
            honest, _ = await started_transport(1, addrs)
            try:
                reader, writer = await asyncio.open_connection(*addrs[0])
                writer.write(struct.pack("<I", 7))  # hello as validator 7
                writer.write(struct.pack("<I", MAX_FRAME + 1))  # poison header
                await writer.drain()
                # The server drops the connection without reading a body.
                assert await reader.read() == b""
                writer.close()
                # ... and still accepts frames from a well-behaved peer.
                await honest.send(0, FetchRequest(refs=()))
                await wait_for(lambda: received == [(1, FetchRequest(refs=()))])
            finally:
                await server.stop()
                await honest.stop()

        run(scenario())

    def test_mid_frame_disconnect_is_contained(self):
        """A peer dying halfway through a frame delivers nothing and
        leaves the transport serving everyone else."""

        async def scenario():
            addrs = addresses(0, 1, port=BASE_PORT + 10)
            server, received = await started_transport(0, addrs)
            honest, _ = await started_transport(1, addrs)
            try:
                _, writer = await asyncio.open_connection(*addrs[0])
                body = encode_message(BlockMessage(block=sample_block()))
                writer.write(struct.pack("<I", 9))
                writer.write(frame(body)[: 4 + len(body) // 2])  # half a frame
                await writer.drain()
                writer.close()
                await asyncio.sleep(0.1)
                assert received == []  # the torn frame never surfaced
                await honest.send(0, FetchRequest(refs=()))
                await wait_for(lambda: received == [(1, FetchRequest(refs=()))])
            finally:
                await server.stop()
                await honest.stop()

        run(scenario())

    def test_concurrent_sends_keep_frame_boundaries(self):
        """Interleaved senders on one connection must never shear a
        frame: every message decodes intact, none are lost."""

        async def scenario():
            addrs = addresses(0, 1, port=BASE_PORT + 20)
            server, received = await started_transport(0, addrs)
            sender, _ = await started_transport(1, addrs)
            try:
                block = sample_block()
                # Mix tiny and large frames so a boundary bug shears.
                messages = [
                    BlockMessage(block=block)
                    if i % 2
                    else FetchRequest(refs=(block.reference,) * (i + 1))
                    for i in range(40)
                ]
                await asyncio.gather(*(sender.send(0, m) for m in messages))
                await wait_for(lambda: len(received) == len(messages))
                assert sorted(
                    (m for _, m in received), key=lambda m: len(encode_message(m))
                ) == sorted(messages, key=lambda m: len(encode_message(m)))
            finally:
                await server.stop()
                await sender.stop()

        run(scenario())


class TestReconnect:
    def test_reconnect_after_peer_restart_on_same_port(self):
        """A peer that crashes and rebinds the same port is reached
        again without any explicit reset on the sender's side."""

        async def scenario():
            addrs = addresses(0, 1, port=BASE_PORT + 30)
            sender, _ = await started_transport(0, addrs)
            first, first_received = await started_transport(1, addrs)
            try:
                await sender.send(1, FetchRequest(refs=()))
                await wait_for(lambda: len(first_received) == 1)
                await first.stop()

                second, second_received = await started_transport(1, addrs)
                try:
                    # The cached writer is stale; sends are best-effort,
                    # so keep trying like the proposal loop does until
                    # the re-dial lands on the new incarnation.
                    async def retry():
                        while not second_received:
                            await sender.send(1, FetchRequest(refs=()))
                            await asyncio.sleep(0.05)

                    await asyncio.wait_for(retry(), timeout=10)
                    assert second_received[0] == (0, FetchRequest(refs=()))
                finally:
                    await second.stop()
            finally:
                await sender.stop()

        run(scenario())


class TestDialBackoff:
    def test_cooldown_skips_redials_and_backs_off_exponentially(self):
        async def scenario():
            addrs = addresses(0, 1, port=BASE_PORT + 40)
            sender, _ = await started_transport(0, addrs)  # peer 1 never starts
            try:
                await sender.send(1, FetchRequest(refs=()))
                until, delay = sender._dial_cooldown[1]
                assert delay == DIAL_BACKOFF_BASE
                # Inside the cooldown window: no fresh dial, state frozen.
                await sender.send(1, FetchRequest(refs=()))
                assert sender._dial_cooldown[1] == (until, delay)
                # Past the window: the next failure doubles the delay.
                await asyncio.sleep(delay + 0.05)
                await sender.send(1, FetchRequest(refs=()))
                assert sender._dial_cooldown[1][1] == 2 * DIAL_BACKOFF_BASE
                assert sender._dial_cooldown[1][1] <= DIAL_BACKOFF_CAP
            finally:
                await sender.stop()

        run(scenario())

    def test_successful_dial_clears_cooldown(self):
        async def scenario():
            addrs = addresses(0, 1, port=BASE_PORT + 50)
            sender, _ = await started_transport(0, addrs)
            try:
                await sender.send(1, FetchRequest(refs=()))  # peer is down
                assert 1 in sender._dial_cooldown
                peer, peer_received = await started_transport(1, addrs)
                try:
                    await asyncio.sleep(DIAL_BACKOFF_BASE + 0.05)
                    await sender.send(1, FetchRequest(refs=()))
                    await wait_for(lambda: len(peer_received) == 1)
                    assert 1 not in sender._dial_cooldown
                finally:
                    await peer.stop()
            finally:
                await sender.stop()

        run(scenario())

    def test_broadcast_not_stalled_by_dead_peer(self):
        """One unreachable peer must not delay the live ones: the
        fan-out is concurrent and the dead dial is bounded."""

        async def scenario():
            addrs = addresses(0, 1, 2, port=BASE_PORT + 60)
            sender, _ = await started_transport(0, addrs)
            live, live_received = await started_transport(1, addrs)  # 2 is dead
            try:
                start = asyncio.get_running_loop().time()
                await sender.broadcast(FetchRequest(refs=()), peers=[1, 2])
                await wait_for(lambda: len(live_received) == 1)
                assert asyncio.get_running_loop().time() - start < 5.0
            finally:
                await sender.stop()
                await live.stop()

        run(scenario())


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-v"]))
