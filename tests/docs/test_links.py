"""The docs link checker gates the repo: every relative Markdown link
must resolve (CI runs ``tools/check_doc_links.py``; this test runs the
same check so the failure is local and immediate)."""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_doc_links import check_file, check_links  # noqa: E402


def test_no_dangling_relative_links_in_repo_markdown():
    assert check_links(REPO_ROOT) == []


def test_checker_flags_a_dangling_link(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("see [the plan](missing/plan.md) and [ok](doc.md)")
    violations = check_file(doc, tmp_path)
    assert len(violations) == 1
    assert "missing/plan.md" in violations[0]


def test_checker_ignores_external_links_and_anchors(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "[a](https://example.com) [b](#section) [c](mailto:x@y.z) "
        "[d](doc.md#anchor)"
    )
    assert check_file(doc, tmp_path) == []
