"""Test utilities: hand-built DAGs and a scriptable common coin.

The decision-rule tests reconstruct the paper's scenarios (Section 3.2,
Appendix B) block by block; :class:`DagBuilder` makes that concise and
:class:`FixedCoin` pins leader election to the validators the scenario
calls for.
"""

from __future__ import annotations

from repro.block import Block, BlockRef, make_genesis
from repro.committee import Committee
from repro.crypto.coin import CoinShare, CommonCoin
from repro.crypto.hashing import hash_parts
from repro.dag.store import DagStore
from repro.errors import InsufficientShares


class FixedCoin(CommonCoin):
    """A coin whose per-round values are scripted by the test.

    ``values[r]`` is the raw coin value opened by certify round ``r``;
    unlisted rounds default to 0 (electing validator ``offset % n``).
    Reconstruction still demands ``threshold`` distinct shares, so tests
    exercise the "coin not yet open" path faithfully.
    """

    def __init__(self, n: int, threshold: int, values: dict[int, int] | None = None) -> None:
        self._n = n
        self.threshold = threshold
        self.values = dict(values or {})

    def elect(self, certify_round: int, validator: int, offset: int = 0) -> None:
        """Script the coin so ``(certify_round, offset)`` elects ``validator``."""
        self.values[certify_round] = (validator - offset) % self._n

    def share(self, author: int, round_number: int) -> CoinShare:
        value = hash_parts(
            [author.to_bytes(4, "little"), round_number.to_bytes(8, "little")],
            person=b"fixed-share",
        )
        return CoinShare(author=author, round=round_number, value=value)

    def verify_share(self, share: CoinShare) -> bool:
        return share == self.share(share.author, share.round)

    def reconstruct(
        self, round_number: int, shares: list[CoinShare], *, threshold: int | None = None
    ) -> int:
        required = self.threshold if threshold is None else threshold
        distinct = {s.author for s in shares if s.round == round_number and self.verify_share(s)}
        if len(distinct) < required:
            raise InsufficientShares(
                f"round {round_number}: {len(distinct)} < {required}"
            )
        return self.values.get(round_number, 0)


class DagBuilder:
    """Builds DAGs by hand, block by block.

    Blocks are indexed by ``(author, round)`` — or ``(author, round,
    tag)`` for equivocations — and parents default to the first-seen
    block of every author at the previous round.
    """

    def __init__(self, committee: Committee, coin: CommonCoin) -> None:
        self.committee = committee
        self.coin = coin
        self.store = DagStore()
        self.blocks: dict[tuple, Block] = {}
        for genesis in make_genesis(committee.size):
            self.store.add(genesis)
            self.blocks[(genesis.author, 0)] = genesis

    def ref(self, author: int, round_number: int, tag: str = "") -> BlockRef:
        """Reference a previously built block."""
        return self.blocks[self._key(author, round_number, tag)].reference

    def get(self, author: int, round_number: int, tag: str = "") -> Block:
        return self.blocks[self._key(author, round_number, tag)]

    @staticmethod
    def _key(author: int, round_number: int, tag: str) -> tuple:
        return (author, round_number, tag) if tag else (author, round_number)

    def block(
        self,
        author: int,
        round_number: int,
        parents: list[tuple] | None = None,
        *,
        tag: str = "",
        transactions: tuple = (),
    ) -> Block:
        """Create and store one block.

        Args:
            author: Block author.
            round_number: Block round.
            parents: Parent specs, each ``(author, round)`` or
                ``(author, round, tag)``; defaults to every first-seen
                previous-round block (lockstep).
            tag: Distinguishes equivocating blocks of the same slot (the
                tag is folded into the block's salt so digests differ).
            transactions: Optional transaction tuple.
        """
        if parents is None:
            parent_refs = self._lockstep_parents(round_number)
        else:
            parent_refs = tuple(self.ref(*spec) for spec in parents)
        block = Block(
            author=author,
            round=round_number,
            parents=parent_refs,
            transactions=transactions,
            coin_share=self.coin.share(author, round_number),
            salt=tag.encode(),
        )
        self.store.add(block)
        self.blocks[self._key(author, round_number, tag)] = block
        return block

    def _lockstep_parents(self, round_number: int) -> tuple[BlockRef, ...]:
        previous = round_number - 1
        refs = []
        for author in sorted(self.store.authors_at_round(previous)):
            refs.append(self.store.slot_blocks(previous, author)[0].reference)
        return tuple(refs)

    def round(self, round_number: int, authors: list[int] | None = None) -> list[Block]:
        """Create a full lockstep round (all ``authors``, default all)."""
        if authors is None:
            authors = list(range(self.committee.size))
        return [self.block(author, round_number) for author in authors]

    def rounds(self, first: int, last: int, authors: list[int] | None = None) -> None:
        """Create lockstep rounds ``first..last`` inclusive."""
        for r in range(first, last + 1):
            self.round(r, authors)
