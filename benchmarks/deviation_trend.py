#!/usr/bin/env python3
"""Deviation-trend tracking: reproduction fidelity as a regression test.

The report's paper-vs-measured tables are re-derived from scratch on
every run and never compared across commits — a silent fidelity drift
(a protocol change that doubles Tusk's measured latency ratio, say)
only shows up when a human re-reads the table.  This tool makes the
ratios first-class data:

1. **Compute** per-figure deviation ratios from any results directory:
   measured/paper commit latency for the Figure 3/4 load points and
   measured/paper leader-slot latency gain for Figures 5/7 — the same
   joins the report renders, as plain numbers.
2. **Append** one row keyed by git revision (and run mode) to
   ``results/deviation_trend.jsonl``, so fidelity history reads as a
   diffable log across commits.
3. **Gate** the current ratios against the frozen baselines under
   ``results/reference/`` (written once from a full-scale fleet run,
   plus the seed-stable smoke baselines CI compares against): any
   tracked ratio drifting more than ``--tolerance`` (default 25%)
   from its baseline fails the run.

Usage::

    python benchmarks/deviation_trend.py                  # gate results/
    python benchmarks/deviation_trend.py --update-baseline  # freeze current
    python benchmarks/deviation_trend.py --no-gate        # record only

The smoke baselines are exact by construction — the simulator is
deterministic and smoke configs are pinned — so a tripped smoke gate
means the *code* changed measured behavior, not that a runner was
noisy.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _bootstrap_sys_path() -> None:
    for path in (REPO_ROOT / "src", REPO_ROOT):
        entry = str(path)
        if entry not in sys.path:
            sys.path.insert(0, entry)


_bootstrap_sys_path()

from repro.analysis.report import LoadedSweep, load_sweeps  # noqa: E402
from repro.sim.sweep import config_from_dict  # noqa: E402

from benchmarks.curve_checks import paper_table_for_config  # noqa: E402
from benchmarks.paper_data import LEADER_SWEEP_IMPROVEMENT  # noqa: E402

#: Relative drift allowed against a baseline ratio before the gate trips.
DEFAULT_TOLERANCE = 0.25

#: Floor on the drift denominator: leader-gain ratios can sit near zero
#: at smoke scale, where a relative comparison would explode.
RATIO_FLOOR = 0.1


# ----------------------------------------------------------------------
# Ratio computation
# ----------------------------------------------------------------------
def _latency_ratios(figure_id: str, sweeps: list[LoadedSweep]) -> dict[str, float]:
    """Measured/paper average-latency ratio per Figure 3/4 load point."""
    ratios: dict[str, float] = {}
    seen: set[str] = set()
    for sweep in sweeps:
        for point in sweep.points:
            if point.config is None or point.result is None:
                continue
            if point.config_hash in seen:
                continue  # smoke collapsing: sweeps share identical points
            seen.add(point.config_hash)
            config = config_from_dict(point.config)
            table = paper_table_for_config(config)
            if table is None or config.protocol not in table:
                continue
            paper = table[config.protocol]
            latency = (point.result.get("latency") or {}).get("avg")
            if latency is None or paper["latency_s"] <= 0:
                continue
            key = (
                f"fig{figure_id}:{config.protocol}:n{config.num_validators}"
                f":load{int(config.load_tps)}"
            )
            ratios[key] = latency / paper["latency_s"]
    return ratios


def _leader_gain_ratios(figure_id: str, sweeps: list[LoadedSweep]) -> dict[str, float]:
    """Measured/paper 1->3 leader-slot latency-gain ratio (Figures 5/7)."""
    ratios: dict[str, float] = {}
    for sweep in sweeps:
        by_series: dict[object, dict] = {}
        for point in sweep.points:
            by_series.setdefault(point.series, {})[point.x] = point.y
        for crashed, by_leaders in by_series.items():
            one, three = by_leaders.get(1), by_leaders.get(3)
            if one is None or three is None:
                continue
            paper_ms = (
                LEADER_SWEEP_IMPROVEMENT["faulty_ms"]
                if crashed
                else LEADER_SWEEP_IMPROVEMENT["ideal_ms"]
            )
            gain_ms = (one - three) * 1000.0
            ratios[f"fig{figure_id}:{sweep.name}:crashed{crashed}"] = gain_ms / paper_ms
    return ratios


def compute_ratios(results_dir: str | Path) -> dict[str, float]:
    """Every tracked paper-vs-measured ratio for one results directory."""
    by_figure: dict[str, list[LoadedSweep]] = {}
    for sweep in load_sweeps(Path(results_dir)):
        by_figure.setdefault(sweep.spec.figure, []).append(sweep)
    ratios: dict[str, float] = {}
    for figure_id in ("3", "4"):
        ratios.update(_latency_ratios(figure_id, by_figure.get(figure_id, [])))
    for figure_id in ("5", "7"):
        ratios.update(_leader_gain_ratios(figure_id, by_figure.get(figure_id, [])))
    return dict(sorted(ratios.items()))


def run_mode(results_dir: str | Path) -> str:
    """The run mode (``smoke``/``full``) recorded by ``repro-bench``."""
    try:
        summary = json.loads((Path(results_dir) / "summary.json").read_text())
    except (OSError, ValueError):
        return "unknown"
    return str(summary.get("mode", "unknown")) if isinstance(summary, dict) else "unknown"


# ----------------------------------------------------------------------
# Baseline + gate
# ----------------------------------------------------------------------
def load_baseline(reference_dir: str | Path) -> dict:
    """The frozen baseline document (``{"modes": {mode: {metric: ratio}}}``)."""
    path = Path(reference_dir) / "deviation_baseline.json"
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return {"schema": 1, "modes": {}}
    if not isinstance(data, dict) or not isinstance(data.get("modes"), dict):
        return {"schema": 1, "modes": {}}
    return data


def drift(current: float, baseline: float) -> float:
    """Relative drift of one ratio against its baseline (floored
    denominator: near-zero baselines compare absolutely)."""
    return abs(current - baseline) / max(abs(baseline), RATIO_FLOOR)


def gate_ratios(
    current: dict[str, float],
    baseline_for_mode: dict[str, float],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> tuple[list[str], float]:
    """Hold the current ratios to the baseline.

    Every baseline metric must still be measured, and must sit within
    ``tolerance`` relative drift.  Metrics the baseline does not know
    (new sweeps) pass freely — they become gated once the baseline is
    refreshed.  Returns ``(violations, max_drift)``.
    """
    violations: list[str] = []
    max_drift = 0.0
    for metric, base in sorted(baseline_for_mode.items()):
        if metric not in current:
            violations.append(
                f"{metric}: tracked by the baseline but no longer measured "
                "(sweep removed or its point cache evicted?)"
            )
            continue
        d = drift(current[metric], float(base))
        max_drift = max(max_drift, d)
        if d > tolerance:
            violations.append(
                f"{metric}: ratio {current[metric]:.3f} drifted "
                f"{d:.0%} from baseline {float(base):.3f} "
                f"(tolerance {tolerance:.0%})"
            )
    return violations, max_drift


# ----------------------------------------------------------------------
# The trend log
# ----------------------------------------------------------------------
def git_revision() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def append_trend_row(trend_path: Path, row: dict) -> bool:
    """Append one row unless the log's most recent row *for this mode*
    is an identical measurement at the same revision (idempotent
    re-runs, even when full/smoke appends interleave)."""
    rows = [r for r in read_trend(trend_path) if r.get("mode") == row.get("mode")]
    if rows:
        last = rows[-1]
        if (
            last.get("rev") == row.get("rev")
            and last.get("ratios") == row.get("ratios")
        ):
            return False
    trend_path.parent.mkdir(parents=True, exist_ok=True)
    with trend_path.open("a") as handle:
        handle.write(json.dumps(row, sort_keys=True) + "\n")
    return True


def read_trend(trend_path: str | Path) -> list[dict]:
    """Parsed trend rows, oldest first (malformed lines skipped)."""
    rows = []
    try:
        lines = Path(trend_path).read_text().splitlines()
    except OSError:
        return []
    for line in lines:
        try:
            row = json.loads(line)
        except ValueError:
            continue
        if isinstance(row, dict):
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="deviation-trend",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--results", default="results", help="results directory (default: results/)"
    )
    parser.add_argument(
        "--reference",
        default=None,
        help="reference-baseline directory (default: <results>/reference, "
        "falling back to the checked-in results/reference)",
    )
    parser.add_argument(
        "--trend-file",
        default=None,
        help="trend log path (default: <results>/deviation_trend.jsonl)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed relative drift per ratio (default: 0.25)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="freeze the current ratios as this mode's baseline instead of gating",
    )
    parser.add_argument(
        "--no-append", action="store_true", help="do not touch the trend log"
    )
    parser.add_argument(
        "--no-gate", action="store_true", help="record but never fail"
    )
    args = parser.parse_args(argv)

    results_dir = Path(args.results)
    if args.reference is not None:
        reference_dir = Path(args.reference)
    else:
        reference_dir = results_dir / "reference"
        if not (reference_dir / "deviation_baseline.json").is_file():
            reference_dir = REPO_ROOT / "results" / "reference"
    trend_path = (
        Path(args.trend_file)
        if args.trend_file is not None
        else results_dir / "deviation_trend.jsonl"
    )

    ratios = compute_ratios(results_dir)
    mode = run_mode(results_dir)
    if not ratios:
        print(
            f"deviation-trend: no comparable points under {results_dir}/ - "
            "run `repro-bench [--smoke]` first"
        )
        return 1
    print(f"deviation-trend: {len(ratios)} tracked ratios ({mode} mode)")
    for metric, value in ratios.items():
        print(f"  {metric:<48} {value:>8.3f}")

    baseline = load_baseline(reference_dir)
    if args.update_baseline:
        baseline.setdefault("modes", {})[mode] = {
            k: round(v, 6) for k, v in ratios.items()
        }
        baseline["schema"] = 1
        baseline["tolerance"] = args.tolerance
        reference_dir.mkdir(parents=True, exist_ok=True)
        path = reference_dir / "deviation_baseline.json"
        path.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(f"deviation-trend: baseline for mode={mode} frozen -> {path}")

    baseline_for_mode = baseline.get("modes", {}).get(mode, {})
    violations, max_drift = gate_ratios(
        ratios, baseline_for_mode, tolerance=args.tolerance
    )

    row = {
        "rev": git_revision(),
        "mode": mode,
        "ratios": {k: round(v, 6) for k, v in ratios.items()},
        "max_drift": round(max_drift, 6) if baseline_for_mode else None,
        "gate_passed": not violations,
    }
    if not args.no_append:
        if append_trend_row(trend_path, row):
            print(f"deviation-trend: appended rev={row['rev']} mode={mode} -> {trend_path}")
        else:
            print(f"deviation-trend: {trend_path} already ends with this measurement")

    if not baseline_for_mode:
        print(
            f"deviation-trend: no baseline for mode={mode} under {reference_dir}/ "
            "- run with --update-baseline to freeze one"
        )
        return 0
    for violation in violations:
        print(f"deviation-trend: GATE - {violation}")
    if violations and not args.no_gate:
        return 1
    print(
        f"deviation-trend: gate passed - max drift {max_drift:.1%} of "
        f"{len(baseline_for_mode)} baseline ratios (tolerance {args.tolerance:.0%})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
