"""Micro-benchmarks of the decision machinery (Figures 1, 2 and 6).

Measures the costs the paper's design minimizes: vote interpretation by
depth-first search, certificate checks, the direct and indirect decision
rules, and sub-DAG linearization — on DAGs shaped like the paper's
walkthrough examples (but at committee size 10).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.committee import Committee  # noqa: E402
from repro.config import ProtocolConfig  # noqa: E402
from repro.core.committer import Committer  # noqa: E402
from repro.dag.traversal import DagTraversal  # noqa: E402

from tests.helpers import DagBuilder, FixedCoin  # noqa: E402


def build_dag(n=10, rounds=20):
    committee = Committee.of_size(n)
    coin = FixedCoin(n=n, threshold=committee.quorum_threshold)
    builder = DagBuilder(committee, coin)
    builder.rounds(1, rounds)
    return committee, coin, builder


@pytest.fixture(scope="module")
def dag():
    return build_dag()


def test_is_vote_dfs(benchmark, dag):
    committee, _, builder = dag
    leader = builder.get(0, 1)
    votes = builder.store.round_blocks(4)

    def check():
        fresh = DagTraversal(builder.store, committee.quorum_threshold)
        return sum(fresh.is_vote(v, leader) for v in votes)

    assert benchmark(check) == len(votes)


def test_is_vote_memoized(benchmark, dag):
    committee, _, builder = dag
    traversal = DagTraversal(builder.store, committee.quorum_threshold)
    leader = builder.get(0, 1)
    votes = builder.store.round_blocks(4)
    traversal.is_vote(votes[0], leader)  # warm the memo

    def check():
        return sum(traversal.is_vote(v, leader) for v in votes)

    assert benchmark(check) == len(votes)


def test_is_cert(benchmark, dag):
    committee, _, builder = dag
    leader = builder.get(0, 1)
    certifiers = builder.store.round_blocks(5)

    def check():
        fresh = DagTraversal(builder.store, committee.quorum_threshold)
        return sum(fresh.is_cert(c, leader) for c in certifiers)

    assert benchmark(check) == len(certifiers)


def test_direct_decision_rule(benchmark, dag):
    committee, coin, builder = dag
    config = ProtocolConfig(wave_length=5, leaders_per_round=2)

    def decide():
        committer = Committer(builder.store, committee, coin, config)
        return committer.try_decide(1, 10)

    statuses = benchmark(decide)
    assert any(s.is_decided for s in statuses)


def test_extend_commit_sequence(benchmark, dag):
    committee, coin, builder = dag
    config = ProtocolConfig(wave_length=5, leaders_per_round=2)

    def commit():
        committer = Committer(builder.store, committee, coin, config)
        return committer.extend_commit_sequence()

    observations = benchmark(commit)
    assert observations


def test_linearize_subdag(benchmark, dag):
    committee, _, builder = dag
    leader = builder.get(0, 20)

    def linearize():
        traversal = DagTraversal(builder.store, committee.quorum_threshold)
        return traversal.linearize([leader], set())

    sequence = benchmark(linearize)
    assert len(sequence) > 100
