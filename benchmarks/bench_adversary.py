"""Adversary and network scenario sweeps.

The paper's fault experiments (Section 5.3) crash validators and walk
away; the protocol's *Byzantine* story — equivocation tolerated by
quorum intersection, leader targeting defeated by after-the-fact coin
elections (Section 2.3) — is argued, not measured.  These sweeps put
each adversary from the model on the simulated network and gate the
qualitative claim it is supposed to satisfy
(``benchmarks/curve_checks.check_adversary_curves``).

Five sweeps:

* ``adversary-equivocation`` — 0..3 validators run equivocation
  *campaigns* (``equivocate`` .. ``desist`` fault-schedule windows),
  sending conflicting blocks per round to disjoint peer halves.  Safety
  must hold (every run asserts identical committed prefixes) and the
  honest committee must keep committing throughout.
* ``adversary-partition`` — a named minority group (3 of 10) is
  partitioned with dropped cross-links for a growing window, then
  healed.  Availability falls linearly with the partition window and
  *tail* latency grows monotonically with it: transactions stalled
  behind the cut commit only after the heal, so the damage lives in the
  p99, not the mean.
* ``adversary-leader-dos`` — an omniscient DoS adversary resolves
  future coin values (:meth:`repro.crypto.coin.FastCoin.peek`) and
  delays only the elected leaders' blocks each round
  (:class:`repro.sim.network.LeaderDosScheduler`).  With one leader
  slot per round the commit pipeline is fully censored; with three
  slots the extra anchors ride through — the multi-leader resilience
  claim of Section 3.
* ``adversary-wan-matrix`` — the preset per-region RTT matrices
  (``metro-3`` / ``paper-5`` / ``global-10``,
  :data:`repro.sim.latency.WAN_PRESETS`): commit latency must track the
  deployment's RTT scale (metro beats both WAN spreads).
* ``adversary-straggler`` — 0..3 honest validators run on machines
  ``STRAGGLE_SCALE``x slower (``straggle`` fault events scaling CPU and
  pacing costs).  Stragglers fall measurably behind the observer's
  round frontier and committee throughput degrades as their proposals
  thin out, but safety and liveness hold — slow is not faulty.

Every config routes through ``run()``'s safety assertion: committed
sequences prefix-align across honest validators, with equivocators
excluded and partitioned/straggling validators deliberately *included*
(they are honest; they must never diverge, only lag).
"""

from __future__ import annotations

import math

import pytest

from repro.sim.faults import FaultEvent
from repro.sim.runner import ExperimentConfig
from repro.sim.sweep import FigureSpec, SweepSpec, run_configs

from .paper_data import Row, bench_scale, print_table

_SCALE = bench_scale()
_DURATION = 10.0 * _SCALE
_WARMUP = 2.0 * _SCALE

#: Offered load for every adversary sweep (smoke mode caps it lower);
#: the scenarios stress the network model, not the queueing regime.
LOAD = 5_000

#: Committee size: f = 3, so up to three concurrent campaigners,
#: partitioned members or stragglers stay within the fault budget.
VALIDATORS = 10

#: Equivocation campaigns start staggered shortly after warmup and all
#: desist at 70% of the run, leaving slack for the tail to commit.
EQUIVOCATE_FRACS = (0.10, 0.12, 0.14)
DESIST_FRAC = 0.70

#: The partitioned minority (3 of 10 keeps a 2f+1 = 7 quorum outside
#: the cut, so the majority side keeps committing).
PARTITION_GROUP = (5, 6, 7)
PARTITION_START_FRAC = 0.16
#: Partition windows as duration fractions; the largest heals at
#: 0.52 x duration, leaving ~half the run for stalled load to drain
#: (an unhealed tail would *shrink* the mean by dropping stalled
#: transactions from it — the reason the figure plots p99).
PARTITION_WINDOW_FRACS = (0.0, 0.12, 0.24, 0.36)

#: Per-leader-block extra delay (seconds).  Calibrated to exceed the
#: commit pipeline's patience: with one leader slot no anchor arrives in
#: time and the pipeline is fully censored; with three slots the
#: off-target anchors commit at degraded latency.
LEADER_DOS_DELAY = 1.0

#: CPU/pacing multiplier for straggler machines.  Simulated per-block
#: costs are microseconds, so an order-hundreds multiplier is what makes
#: a straggler visibly trail the round frontier within a short run.
STRAGGLE_SCALE = 200.0
STRAGGLE_FRAC = 0.05

WAN_MATRICES = ("metro-3", "paper-5", "global-10")


def _base_config(**overrides) -> ExperimentConfig:
    defaults = dict(
        protocol="mahi-mahi-5",
        num_validators=VALIDATORS,
        load_tps=LOAD,
        duration=_DURATION,
        warmup=_WARMUP,
        seed=7,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def _equivocation_schedule(campaigners: int) -> tuple[FaultEvent, ...]:
    events = []
    for i in range(campaigners):
        validator = VALIDATORS - 1 - i
        events.append(
            FaultEvent(
                time=EQUIVOCATE_FRACS[i] * _DURATION, validator=validator, kind="equivocate"
            )
        )
        events.append(
            FaultEvent(time=DESIST_FRAC * _DURATION, validator=validator, kind="desist")
        )
    return tuple(sorted(events, key=lambda e: e.time))


def _partition_schedule(window_frac: float) -> tuple[FaultEvent, ...]:
    if window_frac <= 0.0:
        return ()
    start = PARTITION_START_FRAC * _DURATION
    heal = start + window_frac * _DURATION
    return tuple(
        FaultEvent(time=start, validator=v, kind="partition", group="minority")
        for v in PARTITION_GROUP
    ) + tuple(FaultEvent(time=heal, validator=v, kind="heal") for v in PARTITION_GROUP)


def _straggle_schedule(stragglers: int) -> tuple[FaultEvent, ...]:
    return tuple(
        FaultEvent(
            time=STRAGGLE_FRAC * _DURATION,
            validator=VALIDATORS - 1 - i,
            kind="straggle",
            scale=STRAGGLE_SCALE,
        )
        for i in range(stragglers)
    )


SWEEP_EQUIVOCATION = SweepSpec(
    name="adversary-equivocation",
    figure=FigureSpec(
        figure="adversary-equivocation",
        title="Equivocation campaigns: safety and liveness under 0..f equivocators",
        x_axis="campaign_equivocators",
        x_label="Concurrent equivocation campaigns",
        y_label="Average commit latency (s)",
    ),
    configs=tuple(
        _base_config(fault_schedule=_equivocation_schedule(k)) for k in range(4)
    ),
)

SWEEP_PARTITION = SweepSpec(
    name="adversary-partition",
    figure=FigureSpec(
        figure="adversary-partition",
        title="Minority partition with heal: stalled load lives in the tail",
        x_axis="partition_seconds",
        y_axis="latency_p99_s",
        x_label="Partition window (s)",
        y_label="p99 commit latency (s)",
    ),
    configs=tuple(
        _base_config(fault_schedule=_partition_schedule(frac))
        for frac in PARTITION_WINDOW_FRACS
    ),
)

SWEEP_LEADER_DOS = SweepSpec(
    name="adversary-leader-dos",
    figure=FigureSpec(
        figure="adversary-leader-dos",
        title="Targeted leader DoS: single- vs multi-slot resilience",
        x_axis="leaders_per_round",
        y_axis="throughput_tps",
        series_key="leader_dos_slots",
        x_label="Leader slots per round",
        y_label="Committed throughput (tx/s)",
        series_label="DoS on {} leader(s)/round",
    ),
    configs=tuple(
        _base_config(
            leaders_per_round=lps,
            leader_dos_slots=slots,
            leader_dos_delay=LEADER_DOS_DELAY,
        )
        for lps in (1, 3)
        for slots in (0, 1)
    ),
)

SWEEP_WAN_MATRIX = SweepSpec(
    name="adversary-wan-matrix",
    figure=FigureSpec(
        figure="adversary-wan-matrix",
        title="WAN matrices: commit latency across deployment footprints",
        series_key="wan_matrix",
        x_label="Offered load (tx/s)",
        y_label="Average commit latency (s)",
        series_label="{}",
    ),
    configs=tuple(_base_config(wan_matrix=name) for name in WAN_MATRICES),
)

SWEEP_STRAGGLER = SweepSpec(
    name="adversary-straggler",
    figure=FigureSpec(
        figure="adversary-straggler",
        title="Stragglers: slow-but-honest validators thin the committee's output",
        x_axis="straggler_count",
        y_axis="throughput_tps",
        x_label="Straggling validators",
        y_label="Committed throughput (tx/s)",
    ),
    configs=tuple(
        _base_config(fault_schedule=_straggle_schedule(k)) for k in range(4)
    ),
)

SWEEPS = (
    SWEEP_EQUIVOCATION,
    SWEEP_PARTITION,
    SWEEP_LEADER_DOS,
    SWEEP_WAN_MATRIX,
    SWEEP_STRAGGLER,
)


def test_equivocation_campaigns_preserve_safety_and_liveness(benchmark):
    """0..f validators equivocate mid-run and later desist; the honest
    prefix-consistency assertion inside run() covers every point, the
    campaigners demonstrably sent conflicting blocks, and the committee
    never stops committing."""
    results = benchmark.pedantic(
        run_configs, args=(SWEEP_EQUIVOCATION.configs,), rounds=1, iterations=1
    )
    rows = []
    for r in sorted(results, key=lambda r: r.config.campaign_equivocators):
        k = r.config.campaign_equivocators
        assert r.blocks_committed > 0
        assert not math.isnan(r.latency.avg)
        if k:
            assert r.equivocations > 0  # the campaign actually fired
        else:
            assert r.equivocations == 0
        rows.append(
            Row(
                label=f"{k} campaign(s)",
                paper="(new workload)",
                measured=(
                    f"{r.equivocations} equivocations, latency {r.latency.avg:.2f}s, "
                    f"{r.blocks_committed} blocks"
                ),
            )
        )
    print_table("Equivocation campaigns (safety asserted in-run)", rows)
    benchmark.extra_info["max_campaigns"] = 3


def test_partition_heal_degrades_tail_latency_monotonically(benchmark):
    """The longer the minority stays cut off, the worse the tail: p99
    commit latency and unavailability both grow strictly with the
    partition window, and dropped cross-links are accounted."""
    results = benchmark.pedantic(
        run_configs, args=(SWEEP_PARTITION.configs,), rounds=1, iterations=1
    )
    ordered = sorted(results, key=lambda r: r.config.partition_seconds)
    rows = []
    for r in ordered:
        assert r.blocks_committed > 0
        if r.config.partition_seconds:
            assert r.messages_dropped > 0
            assert r.partitioned_seconds > 0
            assert r.availability < 1.0
        rows.append(
            Row(
                label=f"window {r.config.partition_seconds:.1f}s",
                paper="(new workload)",
                measured=(
                    f"p99 {r.latency.p99:.2f}s, availability {r.availability:.3f}, "
                    f"{r.messages_dropped} dropped"
                ),
            )
        )
    print_table("Minority partition, dropped cross-links", rows)
    p99s = [r.latency.p99 for r in ordered]
    assert p99s == sorted(p99s) and len(set(p99s)) == len(p99s)
    avail = [r.availability for r in ordered]
    assert avail == sorted(avail, reverse=True) and len(set(avail)) == len(avail)


def test_leader_dos_censors_single_slot_but_not_multi_slot(benchmark):
    """The omniscient leader-DoS adversary fully censors the 1-slot
    pipeline (no anchor ever arrives in time) while the 3-slot config
    keeps committing at degraded latency — the multi-leader resilience
    claim, measured."""
    results = benchmark.pedantic(
        run_configs, args=(SWEEP_LEADER_DOS.configs,), rounds=1, iterations=1
    )
    by_key = {
        (r.config.leaders_per_round, r.config.leader_dos_slots): r for r in results
    }
    rows = []
    for (lps, slots), r in sorted(by_key.items()):
        rows.append(
            Row(
                label=f"{lps} slot(s), DoS={'on' if slots else 'off'}",
                paper="(new workload)",
                measured=(
                    f"{r.blocks_committed} blocks, "
                    f"throughput {r.throughput_tps:.0f} tx/s"
                ),
            )
        )
    print_table(f"Leader DoS (delay {LEADER_DOS_DELAY:.1f}s per leader block)", rows)
    assert by_key[(1, 0)].blocks_committed > 0
    assert by_key[(3, 0)].blocks_committed > 0
    assert by_key[(1, 1)].blocks_committed == 0  # fully censored
    assert by_key[(3, 1)].blocks_committed > 0  # rides through
    ratio_1 = by_key[(1, 1)].throughput_tps / by_key[(1, 0)].throughput_tps
    ratio_3 = by_key[(3, 1)].throughput_tps / by_key[(3, 0)].throughput_tps
    assert ratio_1 < ratio_3


def test_wan_matrix_latency_tracks_rtt_scale(benchmark):
    """Commit latency follows the deployment's RTT footprint: the metro
    matrix (sub-ms paths) beats both WAN spreads at matched load."""
    results = benchmark.pedantic(
        run_configs, args=(SWEEP_WAN_MATRIX.configs,), rounds=1, iterations=1
    )
    by_matrix = {r.config.wan_matrix: r for r in results}
    rows = [
        Row(
            label=name,
            paper="(new workload)",
            measured=f"latency {by_matrix[name].latency.avg:.3f}s",
        )
        for name in WAN_MATRICES
    ]
    print_table("WAN matrices at matched load", rows)
    metro = by_matrix["metro-3"].latency.avg
    assert metro < by_matrix["paper-5"].latency.avg
    assert metro < by_matrix["global-10"].latency.avg


def test_stragglers_fall_behind_and_thin_throughput(benchmark):
    """Straggling (slow-but-honest) validators trail the round frontier
    and committee throughput declines as their proposals thin out;
    safety and liveness hold throughout."""
    results = benchmark.pedantic(
        run_configs, args=(SWEEP_STRAGGLER.configs,), rounds=1, iterations=1
    )
    ordered = sorted(results, key=lambda r: r.config.straggler_count)
    rows = []
    for r in ordered:
        assert r.blocks_committed > 0
        if r.config.straggler_count:
            assert r.max_rounds_behind > 0
        rows.append(
            Row(
                label=f"{r.config.straggler_count} straggler(s) @ {STRAGGLE_SCALE:.0f}x",
                paper="(new workload)",
                measured=(
                    f"throughput {r.throughput_tps:.0f} tx/s, "
                    f"{r.max_rounds_behind} rounds behind"
                ),
            )
        )
    print_table("Stragglers: throughput vs slow members", rows)
    assert ordered[-1].throughput_tps < ordered[0].throughput_tps


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q", "--benchmark-disable"]))
