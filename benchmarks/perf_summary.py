#!/usr/bin/env python3
"""Machine-readable micro-benchmark summary (the CI ``perf`` job).

Runs the ``bench_micro.py`` comparison suites under pytest-benchmark,
collects each suite's recorded before/after numbers (``extra_info``),
and writes ``results/perf_summary.json``: events/s for the event loop,
commit-walk ns/slot, the network-delivery event reduction, and the
speedup ratios — the numbers the repo's "every optimization lands with a
before/after point" discipline produces, in one artifact.

A soft floor gates the event-loop drain rate: the exact rate varies with
runner hardware, so the bar is set an order of magnitude below typical —
it only trips on catastrophic regressions (an accidentally quadratic
heap, debug instrumentation left on), not on noisy neighbors.

Usage::

    python benchmarks/perf_summary.py                 # run + summarize + gate
    python benchmarks/perf_summary.py --out out.json  # custom output path
    python benchmarks/perf_summary.py --no-gate       # record only, never fail
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _bootstrap_sys_path() -> None:
    for path in (str(REPO_ROOT / "src"),):
        if path not in sys.path:
            sys.path.insert(0, path)


_bootstrap_sys_path()

#: Order-of-magnitude floor on the optimized event loop's drain rate
#: (events/s).  Typical runners measure 10-30x this.
EVENTS_PER_SECOND_FLOOR = 50_000.0

#: The comparison suites whose ``extra_info`` feeds the summary.
SUITES = (
    "TestEventLoop",
    "TestNetworkDelivery",
    "TestWireSizes",
    "TestCommitWalk",
)

#: extra_info keys lifted into the summary, grouped by section.
SECTIONS = {
    "event_loop": (
        "baseline_events_per_s",
        "optimized_events_per_s",
        "speedup",
        "sim_events_per_s",
    ),
    "network_delivery": ("per_message_events", "batched_events", "event_reduction"),
    "wire_sizes": ("recompute_us", "memoized_us"),
    "commit_walk": (
        "full_clear_ns_per_slot",
        "incremental_ns_per_slot",
        "speedup",
    ),
}

#: Benchmark class that feeds each section.
SECTION_CLASSES = {
    "event_loop": "TestEventLoop",
    "network_delivery": "TestNetworkDelivery",
    "wire_sizes": "TestWireSizes",
    "commit_walk": "TestCommitWalk",
}


def run_benchmarks(benchmark_json: Path) -> int:
    """Run the comparison suites with ``--benchmark-json``."""
    selector = " or ".join(SUITES)
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(REPO_ROOT / "benchmarks" / "bench_micro.py"),
        "-q",
        "-k",
        selector,
        f"--benchmark-json={benchmark_json}",
    ]
    return subprocess.call(command, cwd=REPO_ROOT)


def summarize(benchmark_json: Path) -> dict:
    """Collapse the pytest-benchmark report into the perf summary."""
    report = json.loads(benchmark_json.read_text())
    by_class: dict[str, dict] = {}
    stats: dict[str, dict] = {}
    for entry in report.get("benchmarks", ()):
        # fullname looks like "benchmarks/bench_micro.py::TestX::test_y".
        parts = entry.get("fullname", "").split("::")
        cls = parts[1] if len(parts) >= 3 else ""
        by_class.setdefault(cls, {}).update(entry.get("extra_info", {}))
        entry_stats = entry.get("stats", {})
        stats[parts[-1]] = {
            "min_s": entry_stats.get("min"),
            "mean_s": entry_stats.get("mean"),
            "rounds": entry_stats.get("rounds"),
        }
    summary: dict = {
        "schema": 1,
        "machine_info": {
            key: report.get("machine_info", {}).get(key)
            for key in ("python_version", "python_implementation", "cpu")
        },
        "benchmarks": stats,
    }
    for section, keys in SECTIONS.items():
        info = by_class.get(SECTION_CLASSES[section], {})
        summary[section] = {key: info.get(key) for key in keys if key in info}
    return summary


def fleet_comparison(workers: int = 2, points: int = 6) -> dict:
    """Cold serial pass vs a cold ``local:N`` fleet over the same tiny
    point set (both into fresh stores; results asserted byte-identical).

    The speedup is recorded unconditionally but only *gated* when the
    machine has enough cores to expect one (``--assert-fleet-speedup``,
    set by the CI perf job): fleet workers are processes, so a 1-CPU
    box legitimately measures overhead instead of parallelism.
    """
    from repro.fleet import FleetSpec, run_fleet
    from repro.fleet.coordinator import items_for_configs
    from repro.fleet.worker import run_item
    from repro.sim.runner import ExperimentConfig
    from repro.sim.sweep import ResultsStore

    # ~1.5s of compute per point: heavy enough that parallelism beats
    # the ~0.5s/worker interpreter start on a multi-core machine.
    configs = [
        ExperimentConfig(
            protocol="mahi-mahi-4",
            num_validators=10,
            load_tps=2000.0 + 100.0 * i,
            duration=15.0,
            warmup=1.0,
        )
        for i in range(points)
    ]
    with tempfile.TemporaryDirectory(prefix="fleet-perf-") as tmp:
        serial_store = ResultsStore(Path(tmp) / "serial")
        serial_started = time.perf_counter()
        for item in items_for_configs(configs):
            run_item(item, serial_store)
        serial_wall = time.perf_counter() - serial_started

        fleet_store = ResultsStore(Path(tmp) / "fleet")
        fleet_started = time.perf_counter()
        report = run_fleet(
            items_for_configs(configs), fleet_store, FleetSpec.local(workers)
        )
        fleet_wall = time.perf_counter() - fleet_started

        identical = all(
            (serial_store.points_dir / name).read_bytes()
            == (fleet_store.points_dir / name).read_bytes()
            for name in sorted(
                p.name for p in serial_store.points_dir.glob("*.json")
                if not p.name.endswith(".wall.json")
            )
        )
    return {
        "workers": workers,
        "points": points,
        "cpu_count": os.cpu_count(),
        "serial_wall_s": round(serial_wall, 3),
        "fleet_wall_s": round(fleet_wall, 3),
        "speedup": round(serial_wall / fleet_wall, 3) if fleet_wall > 0 else None,
        "byte_identical": identical,
        "redispatched": report.redispatched,
        "worker_failures": report.worker_failures,
    }


def apply_gate(summary: dict, *, assert_fleet_speedup: bool = False) -> list[str]:
    """The soft floor gate; returns violation messages (empty = pass)."""
    violations: list[str] = []
    rate = summary.get("event_loop", {}).get("optimized_events_per_s")
    if rate is None:
        violations.append("event-loop drain rate missing from the benchmark report")
    elif rate < EVENTS_PER_SECOND_FLOOR:
        violations.append(
            f"event-loop drain rate {rate:,.0f} events/s is below the floor "
            f"({EVENTS_PER_SECOND_FLOOR:,.0f} events/s) - an order-of-magnitude "
            "regression"
        )
    fleet = summary.get("fleet")
    if isinstance(fleet, dict):
        # Correctness is gated unconditionally; the speedup only where
        # the hardware can deliver one (multi-core CI runners).
        if not fleet.get("byte_identical"):
            violations.append("fleet point cache is not byte-identical to the serial run")
        if fleet.get("worker_failures"):
            violations.append(f"fleet workers failed: {fleet['worker_failures']}")
        speedup = fleet.get("speedup")
        if assert_fleet_speedup and (speedup is None or speedup <= 1.0):
            violations.append(
                f"fleet speedup {speedup} is not > 1.0 with "
                f"{fleet.get('workers')} workers on {fleet.get('cpu_count')} CPUs"
            )
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "results" / "perf_summary.json"),
        help="summary output path (default: results/perf_summary.json)",
    )
    parser.add_argument(
        "--benchmark-json",
        default=None,
        help="reuse an existing pytest-benchmark report instead of running",
    )
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="record the summary but never fail the run",
    )
    parser.add_argument(
        "--skip-fleet",
        action="store_true",
        help="skip the serial-vs-fleet wall-clock comparison",
    )
    parser.add_argument(
        "--fleet-workers",
        type=int,
        default=2,
        help="local fleet size for the comparison (default: 2)",
    )
    parser.add_argument(
        "--assert-fleet-speedup",
        action="store_true",
        help="gate fleet speedup > 1.0 (only meaningful on multi-core machines)",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    if args.benchmark_json is not None:
        benchmark_json = Path(args.benchmark_json)
        status = 0
    else:
        benchmark_json = Path(tempfile.mkdtemp(prefix="perf-")) / "bench_micro.json"
        status = run_benchmarks(benchmark_json)
        if status != 0:
            print(f"perf-summary: FAIL - benchmark run exited {status}")
            return status

    summary = summarize(benchmark_json)
    if not args.skip_fleet:
        summary["fleet"] = fleet_comparison(workers=args.fleet_workers)
    summary["wall_seconds"] = round(time.perf_counter() - started, 3)
    violations = apply_gate(summary, assert_fleet_speedup=args.assert_fleet_speedup)
    summary["gate"] = {
        "events_per_second_floor": EVENTS_PER_SECOND_FLOOR,
        "passed": not violations,
        "violations": violations,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(summary, indent=2, sort_keys=True))
    print(f"perf-summary: wrote {out}")
    for section in SECTIONS:
        values = summary.get(section, {})
        if values:
            rendered = ", ".join(
                f"{key}={value:,.0f}" if isinstance(value, float) and value > 100
                else f"{key}={value}"
                for key, value in values.items()
                if value is not None
            )
            print(f"perf-summary: {section}: {rendered}")
    fleet = summary.get("fleet")
    if isinstance(fleet, dict):
        print(
            f"perf-summary: fleet: {fleet['points']} points, "
            f"serial {fleet['serial_wall_s']}s vs {fleet['workers']}-worker fleet "
            f"{fleet['fleet_wall_s']}s (speedup {fleet['speedup']}x, "
            f"byte_identical={fleet['byte_identical']}, "
            f"{fleet['cpu_count']} CPUs)"
        )
    for violation in violations:
        print(f"perf-summary: GATE - {violation}")
    if violations and not args.no_gate:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
