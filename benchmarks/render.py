#!/usr/bin/env python3
"""Standalone figure-rendering and report CLI.

Renders ``results/figures/figure-<id>.svg`` (one per paper figure) and
``results/REPORT.md`` from the sweep summaries already on disk — no
sweeps are re-run; use ``repro-bench [--smoke] --render`` to run and
render in one command.  The chart backend is pure Python SVG
(:mod:`repro.analysis.plotting`); when matplotlib happens to be
importable, ``--png`` adds PNGs next to the SVGs.

Usage::

    python -m benchmarks.render                 # render results/
    python -m benchmarks.render --results out/  # another results dir
    python -m benchmarks.render --png           # + PNGs (needs matplotlib)

This module also owns the paper-vs-measured *deviation tables* of the
report: it joins each rendered point against the reference numbers in
``benchmarks/paper_data.py`` (the analysis layer deliberately knows
nothing about the paper's values).  See ``docs/EXPERIMENTS.md`` for the
recorded comparison workflow.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _bootstrap_sys_path() -> None:
    for path in (REPO_ROOT / "src", REPO_ROOT):
        entry = str(path)
        if entry not in sys.path:
            sys.path.insert(0, entry)


_bootstrap_sys_path()

from repro.analysis.report import (  # noqa: E402
    DeviationRow,
    LoadedSweep,
    generate_report,
)
from repro.sim.sweep import config_from_dict  # noqa: E402

from benchmarks.curve_checks import paper_table_for_config  # noqa: E402
from benchmarks.paper_data import LEADER_SWEEP_IMPROVEMENT  # noqa: E402


def _ratio(measured: float, paper: float) -> str:
    if paper <= 0:
        return ""
    return f"{measured / paper:.2f}x paper"


def _latency_rows(sweeps: list[LoadedSweep]) -> list[DeviationRow]:
    """Paper-vs-measured latency/throughput rows for the load sweeps
    (Figures 3 and 4), one per point with a matching reference entry."""
    rows = []
    seen: set[str] = set()
    for sweep in sweeps:
        for point in sweep.points:
            if point.config is None or point.result is None:
                continue  # point cache evicted: no config to match on
            if point.config_hash in seen:
                continue  # smoke collapsing: sweeps share identical points
            seen.add(point.config_hash)
            config = config_from_dict(point.config)
            table = paper_table_for_config(config)
            if table is None or config.protocol not in table:
                continue
            paper = table[config.protocol]
            latency = (point.result.get("latency") or {}).get("avg")
            throughput = point.result.get("throughput_tps", 0.0)
            if latency is None:
                continue
            rows.append(
                DeviationRow(
                    label=(
                        f"{config.protocol}, n={config.num_validators} "
                        f"@ {config.load_tps / 1000:.0f}k tx/s"
                    ),
                    paper=(
                        f"{paper['latency_s']:.2f}s "
                        f"@ <= {paper['peak_tps'] / 1000:.0f}k tx/s"
                    ),
                    measured=(
                        f"{latency:.2f}s, {throughput / 1000:.1f}k tx/s committed"
                    ),
                    deviation=_ratio(latency, paper["latency_s"]),
                )
            )
    return rows


def _leader_gain_rows(sweeps: list[LoadedSweep]) -> list[DeviationRow]:
    """1 -> 3 leader-slot latency improvement vs the paper's ~40 ms
    (ideal) / ~100 ms (3 faults) for the Figure 5/7 sweeps."""
    rows = []
    for sweep in sweeps:
        by_series: dict[object, dict] = {}
        for point in sweep.points:
            by_series.setdefault(point.series, {})[point.x] = point.y
        for crashed, by_leaders in by_series.items():
            one, three = by_leaders.get(1), by_leaders.get(3)
            if one is None or three is None:
                continue
            paper_ms = (
                LEADER_SWEEP_IMPROVEMENT["faulty_ms"]
                if crashed
                else LEADER_SWEEP_IMPROVEMENT["ideal_ms"]
            )
            gain_ms = (one - three) * 1000.0
            rows.append(
                DeviationRow(
                    label=f"{sweep.name}: 1 -> 3 leaders ({crashed} crash faults)",
                    paper=f"~{paper_ms:.0f} ms lower latency",
                    measured=f"{gain_ms:.0f} ms lower",
                    deviation=_ratio(gain_ms, paper_ms) if gain_ms > 0 else "no gain measured",
                )
            )
    return rows


def paper_deviation_rows(
    figure_id: str, sweeps: list[LoadedSweep]
) -> list[tuple[str, list[DeviationRow]]]:
    """The report callback: deviation tables for one figure group."""
    if figure_id in ("3", "4"):
        return [("Paper vs measured (latency at offered load)", _latency_rows(sweeps))]
    if figure_id in ("5", "7"):
        return [("Paper vs measured (leader-slot improvement)", _leader_gain_rows(sweeps))]
    return []


def render_report(results_dir: str | Path, *, png: bool = False) -> dict:
    """Render figures + REPORT.md for ``results_dir`` (the shared path
    behind both this CLI and ``repro-bench --render``)."""
    return generate_report(
        results_dir,
        paper_rows=paper_deviation_rows,
        png=png,
        title="Reproduction report - Mahi-Mahi (ICDCS'25)",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.render",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--results",
        default="results",
        help="results directory written by repro-bench (default: results/)",
    )
    parser.add_argument(
        "--png",
        action="store_true",
        help="also render PNGs via matplotlib when it is importable",
    )
    args = parser.parse_args(argv)

    from repro.analysis.plotting import matplotlib_available
    from repro.analysis.report import ReportError

    try:
        outputs = render_report(args.results, png=args.png)
    except ReportError as error:
        print(f"benchmarks.render: {error}", file=sys.stderr)
        return 1
    for figure_id, path in outputs["figures"].items():
        print(f"[render] {figure_id:<12} -> {path}")
    if args.png and not matplotlib_available():
        print("[render] matplotlib not importable - PNGs skipped (SVGs unaffected)")
    for figure_id, path in outputs["pngs"].items():
        print(f"[render] {figure_id:<12} -> {path}")
    print(f"[render] report       -> {outputs['report']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
