"""Figure 7 (Appendix D): leader-slot sweep for wave length 5.

Identical methodology to Figure 5 but with Mahi-Mahi-5: 1, 2 and 3
leader slots per round, 10 validators, zero and three crash faults.
The sweeps are declared as data (``SWEEPS``) via the shared builder in
``bench_fig5_leaders_w4``.
"""

from __future__ import annotations

import pytest

from .bench_fig5_leaders_w4 import LEADERS, leader_sweep_spec, report, run_leader_sweep

WAVE_PROTOCOL = "mahi-mahi-5"

SWEEPS = (
    leader_sweep_spec("7", WAVE_PROTOCOL, 0),
    leader_sweep_spec("7", WAVE_PROTOCOL, 3),
)


@pytest.mark.parametrize("num_crashed", [0, 3])
def test_fig7_leader_sweep(benchmark, num_crashed):
    results = benchmark.pedantic(
        run_leader_sweep,
        args=(WAVE_PROTOCOL, num_crashed),
        kwargs={"figure": "7"},
        rounds=1,
        iterations=1,
    )
    report(WAVE_PROTOCOL, num_crashed, results)
    benchmark.extra_info.update(
        {f"latency_{k}_leaders_ms": results[k].latency.avg * 1000 for k in LEADERS}
    )
    assert results[3].latency.avg <= results[1].latency.avg + 0.02
