"""Figure 7 (Appendix D): leader-slot sweep for wave length 5.

Identical methodology to Figure 5 but with Mahi-Mahi-5: 1, 2 and 3
leader slots per round, 10 validators, zero and three crash faults.
"""

from __future__ import annotations

import pytest

from .bench_fig5_leaders_w4 import LEADERS, report, run_leader_sweep

WAVE_PROTOCOL = "mahi-mahi-5"


@pytest.mark.parametrize("num_crashed", [0, 3])
def test_fig7_leader_sweep(benchmark, num_crashed):
    results = benchmark.pedantic(
        run_leader_sweep, args=(WAVE_PROTOCOL, num_crashed), rounds=1, iterations=1
    )
    report(WAVE_PROTOCOL, num_crashed, results)
    benchmark.extra_info.update(
        {f"latency_{l}_leaders_ms": results[l].latency.avg * 1000 for l in LEADERS}
    )
    assert results[3].latency.avg <= results[1].latency.avg + 0.02
