"""Figure 4: performance under crash faults.

10 validators, 3 crashed (the maximum f for this committee), load sweep
(Section 5.3; claim C3).  The reproduction targets: Mahi-Mahi's direct
skip rule holds its latency near the ideal case, Cordial Miners pays
roughly two extra rounds per dead leader, and Tusk degrades the most.

The sweeps are declared as data (``SWEEPS``) and consumed both by these
pytest-benchmark tests and by ``run_all.py``.
"""

from __future__ import annotations

import pytest

from repro.sim.runner import ExperimentConfig, PROTOCOLS
from repro.sim.sweep import FigureSpec, SweepSpec, run_configs

from .paper_data import FIG4_FAULTS, Row, bench_scale, print_table

LOADS = [10_000, 30_000]

_SCALE = bench_scale()

SWEEP_FAULTS = SweepSpec(
    name="fig4-faults-10",
    figure=FigureSpec(
        figure="4",
        title="Figure 4: 10 validators, 3 crash faults",
        x_label="Offered load (tx/s)",
        y_label="Average commit latency (s)",
    ),
    configs=tuple(
        ExperimentConfig(
            protocol=protocol,
            num_validators=10,
            num_crashed=3,
            load_tps=load,
            duration=12.0 * _SCALE,
            warmup=4.0 * _SCALE,
            seed=5,
        )
        for protocol in PROTOCOLS
        for load in LOADS
    ),
)

SWEEP_SKIP_MECHANISM = SweepSpec(
    name="fig4-skip-mechanism",
    figure=FigureSpec(
        figure="4",
        title="Figure 4 mechanism: direct skips vs anchors",
        x_label="Offered load (tx/s)",
        y_label="Average commit latency (s)",
    ),
    configs=tuple(
        ExperimentConfig(
            protocol=protocol,
            num_validators=10,
            num_crashed=3,
            load_tps=10_000,
            duration=14.0 * _SCALE,
            warmup=4.0 * _SCALE,
            seed=5,
        )
        for protocol in ("mahi-mahi-5", "cordial-miners")
    ),
)

SWEEPS = (SWEEP_FAULTS, SWEEP_SKIP_MECHANISM)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_fig4_three_crash_faults(benchmark, protocol):
    configs = [c for c in SWEEP_FAULTS.configs if c.protocol == protocol]
    results = benchmark.pedantic(run_configs, args=(configs,), rounds=1, iterations=1)
    paper = FIG4_FAULTS[protocol]
    rows = [
        Row(
            label=f"{protocol} @ {r.config.load_tps / 1000:.0f}k tx/s",
            paper=f"{paper['latency_s']:.2f}s",
            measured=(
                f"{r.latency.avg:.2f}s avg, {r.throughput_tps / 1000:.1f}k tx/s, "
                f"skips direct/indirect {r.direct_skips}/{r.indirect_skips}"
            ),
        )
        for r in results
    ]
    print_table(f"Figure 4 (10 validators, 3 faults) - {protocol}", rows)
    benchmark.extra_info["latency_avg_s"] = results[0].latency.avg
    benchmark.extra_info["direct_skips"] = results[0].direct_skips


def test_fig4_direct_skip_advantage(benchmark):
    """Claim C3's mechanism: Mahi-Mahi skips dead leaders directly,
    Cordial Miners only through later anchors."""

    def run_pair():
        results = run_configs(SWEEP_SKIP_MECHANISM.configs)
        return {r.config.protocol: r for r in results}

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    mahi, cm = results["mahi-mahi-5"], results["cordial-miners"]
    print_table(
        "Figure 4 mechanism: skip rule",
        [
            Row(
                label="mahi-mahi-5 direct skips",
                paper="bypasses ~2 rounds earlier",
                measured=f"{mahi.direct_skips} direct / {mahi.indirect_skips} indirect",
            ),
            Row(
                label="cordial-miners direct skips",
                paper="0 (no direct skip rule)",
                measured=f"{cm.direct_skips} direct / {cm.indirect_skips} indirect",
            ),
            Row(
                label="latency advantage",
                paper="~50% lower (1.7s vs 0.95s)",
                measured=f"{(1 - mahi.latency.avg / cm.latency.avg) * 100:.0f}% lower",
            ),
        ],
    )
    assert mahi.direct_skips > 0
    assert cm.direct_skips == 0
    assert mahi.latency.avg < cm.latency.avg
