"""Benchmark suite: paper-figure sweeps declared as data.

Every ``bench_*`` module that drives the simulator exports a ``SWEEPS``
tuple of :class:`repro.sim.sweep.SweepSpec` — the single source of truth
for which :class:`~repro.sim.runner.ExperimentConfig` points a figure
needs.  Two consumers share those declarations:

* the pytest-benchmark tests in the modules themselves (paper-vs-
  measured tables, assertion of the paper's qualitative claims);
* ``run_all.py`` / the ``repro-bench`` entry point, which executes all
  sweeps through the parallel, cached sweep engine and writes
  machine-readable ``results/*.json``.
"""
