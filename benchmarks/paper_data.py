"""Reference numbers quoted in the paper's evaluation (Section 5,
Appendix D), used to print paper-vs-measured tables next to every
benchmark.  Values are the prose/figure numbers, not pixel-perfect
curve reads.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: Figure 3, 10 validators, ideal conditions: peak throughput (tx/s) and
#: average latency (s) at moderate load, per the Section 5.2 prose.
FIG3_10_NODES = {
    "tusk": {"peak_tps": 125_000, "latency_s": 3.5},
    "cordial-miners": {"peak_tps": 130_000, "latency_s": 1.5},
    "mahi-mahi-5": {"peak_tps": 130_000, "latency_s": 1.1},
    "mahi-mahi-4": {"peak_tps": 130_000, "latency_s": 0.9},
}

#: Figure 3, 50 validators.
FIG3_50_NODES = {
    "tusk": {"peak_tps": 125_000, "latency_s": 3.5},
    "cordial-miners": {"peak_tps": 350_000, "latency_s": 2.6},
    "mahi-mahi-5": {"peak_tps": 350_000, "latency_s": 2.0},
    "mahi-mahi-4": {"peak_tps": 350_000, "latency_s": 1.5},
}

#: Figure 4, 10 validators with 3 crash faults.
FIG4_FAULTS = {
    "tusk": {"peak_tps": 37_500, "latency_s": 7.0},
    "cordial-miners": {"peak_tps": 37_500, "latency_s": 1.7},
    "mahi-mahi-5": {"peak_tps": 37_500, "latency_s": 0.95},
    "mahi-mahi-4": {"peak_tps": 37_500, "latency_s": 0.85},
}

#: Figures 5 and 7: going from 1 to 3 leaders cuts average latency by
#: ~40 ms (no faults) and ~100 ms (3 faults).
LEADER_SWEEP_IMPROVEMENT = {"ideal_ms": 40.0, "faulty_ms": 100.0}


def bench_scale() -> float:
    """Scale factor for benchmark durations.

    ``REPRO_BENCH_SCALE=3`` triples simulated durations (tighter
    confidence, longer wall time); CI keeps the default 1.
    """
    return float(os.environ.get("REPRO_BENCH_SCALE", "1"))


@dataclass(frozen=True)
class Row:
    """One printable paper-vs-measured row."""

    label: str
    paper: str
    measured: str

    def format(self, width: int = 36) -> str:
        return f"  {self.label:<{width}} paper: {self.paper:<18} measured: {self.measured}"


def print_table(title: str, rows: list[Row]) -> None:
    """Print one experiment's comparison table to the bench log."""
    print()
    print(f"== {title} ==")
    for row in rows:
        print(row.format())
