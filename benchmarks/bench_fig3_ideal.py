"""Figure 3: throughput-latency under ideal conditions.

Reproduces the comparative WAN measurement of Mahi-Mahi-5, Mahi-Mahi-4,
Cordial Miners and Tusk with 10 and 50 validators, no faults, 512-byte
transactions (Section 5.2; claims C1, C2 and C5).

The sweeps are declared as data (``SWEEPS``) and consumed both by these
pytest-benchmark tests and by ``run_all.py``.  Each benchmark runs the
load sweep for one protocol and prints the throughput/latency series
next to the paper's reference numbers.  Absolute tx/s differ from the
paper's Rust-on-AWS testbed; the reproduction targets are the latency
ordering, the ratios between protocols, and the position of the
saturation knee.
"""

from __future__ import annotations

import pytest

from repro.sim.runner import ExperimentConfig, PROTOCOLS
from repro.sim.sweep import FigureSpec, SweepSpec, run_configs

from .paper_data import FIG3_10_NODES, FIG3_50_NODES, Row, bench_scale, print_table

#: Offered loads for the 10-validator sweep (real tx/s).
LOADS_10 = [20_000, 60_000, 100_000, 130_000]

_SCALE = bench_scale()

SWEEP_10 = SweepSpec(
    name="fig3-ideal-10",
    figure=FigureSpec(
        figure="3",
        title="Figure 3: 10 validators, ideal conditions",
        x_label="Offered load (tx/s)",
        y_label="Average commit latency (s)",
    ),
    configs=tuple(
        ExperimentConfig(
            protocol=protocol,
            num_validators=10,
            load_tps=load,
            duration=20.0 * _SCALE,
            warmup=5.0 * _SCALE,
            seed=3,
        )
        for protocol in PROTOCOLS
        for load in LOADS_10
    ),
)

SWEEP_50 = SweepSpec(
    name="fig3-ideal-50",
    figure=FigureSpec(
        figure="3",
        title="Figure 3: 50 validators, ideal conditions",
        x_label="Offered load (tx/s)",
        y_label="Average commit latency (s)",
    ),
    configs=tuple(
        ExperimentConfig(
            protocol=protocol,
            num_validators=50,
            load_tps=200_000 if protocol != "tusk" else 80_000,
            duration=8.0 * _SCALE,
            warmup=3.0 * _SCALE,
            seed=3,
        )
        for protocol in PROTOCOLS
    ),
)

SWEEP_ORDERING = SweepSpec(
    name="fig3-ordering-10",
    figure=FigureSpec(
        figure="3",
        title="Figure 3 ordering: 10 validators @ 20k tx/s",
        x_label="Offered load (tx/s)",
        y_label="Average commit latency (s)",
    ),
    configs=tuple(
        ExperimentConfig(
            protocol=protocol,
            num_validators=10,
            load_tps=20_000,
            duration=14.0 * _SCALE,
            warmup=4.0 * _SCALE,
            seed=3,
        )
        for protocol in PROTOCOLS
    ),
)

SWEEPS = (SWEEP_10, SWEEP_50, SWEEP_ORDERING)


def _sweep_10(protocol: str):
    return run_configs(c for c in SWEEP_10.configs if c.protocol == protocol)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_fig3_10_validators(benchmark, protocol):
    results = benchmark.pedantic(_sweep_10, args=(protocol,), rounds=1, iterations=1)
    paper = FIG3_10_NODES[protocol]
    rows = [
        Row(
            label=f"{protocol} @ {r.config.load_tps / 1000:.0f}k tx/s",
            paper=f"{paper['latency_s']:.2f}s @ <= {paper['peak_tps'] / 1000:.0f}k",
            measured=(
                f"{r.latency.avg:.2f}s avg, {r.throughput_tps / 1000:.1f}k tx/s committed"
            ),
        )
        for r in results
    ]
    print_table(f"Figure 3 (10 validators, ideal) - {protocol}", rows)
    stable = results[0]
    benchmark.extra_info["latency_avg_s"] = stable.latency.avg
    benchmark.extra_info["peak_throughput_tps"] = max(r.throughput_tps for r in results)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_fig3_50_validators(benchmark, protocol):
    """The large-committee point (claim C2): uncertified DAGs sustain
    far higher load at 50 nodes than Tusk, at higher latency than the
    10-node deployment."""
    [config] = [c for c in SWEEP_50.configs if c.protocol == protocol]
    [result] = benchmark.pedantic(run_configs, args=([config],), rounds=1, iterations=1)
    paper = FIG3_50_NODES[protocol]
    print_table(
        f"Figure 3 (50 validators, ideal) - {protocol}",
        [
            Row(
                label=f"{protocol} @ {config.load_tps / 1000:.0f}k tx/s",
                paper=f"{paper['latency_s']:.2f}s @ {paper['peak_tps'] / 1000:.0f}k",
                measured=(
                    f"{result.latency.avg:.2f}s avg, "
                    f"{result.throughput_tps / 1000:.1f}k tx/s committed"
                ),
            )
        ],
    )
    benchmark.extra_info["latency_avg_s"] = result.latency.avg
    benchmark.extra_info["throughput_tps"] = result.throughput_tps


def test_fig3_latency_ordering(benchmark):
    """The headline comparison at one load: MM-4 < MM-5 < CM <= Tusk."""

    def sweep():
        results = run_configs(SWEEP_ORDERING.configs)
        return {r.config.protocol: r for r in results}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        Row(
            label=protocol,
            paper=f"{FIG3_10_NODES[protocol]['latency_s']:.2f}s",
            measured=f"{results[protocol].latency.avg:.2f}s",
        )
        for protocol in PROTOCOLS
    ]
    print_table("Figure 3 ordering (10 validators @ 20k tx/s)", rows)
    latencies = {p: results[p].latency.avg for p in PROTOCOLS}
    assert latencies["mahi-mahi-4"] < latencies["mahi-mahi-5"]
    assert latencies["mahi-mahi-5"] < latencies["cordial-miners"]
    assert latencies["mahi-mahi-5"] < latencies["tusk"]
