"""The epoch-resize commit-walk workload (shared by ``bench_micro`` and
the round-scoped invalidation tests).

Builds a canonical lockstep block stream whose transactions carry
committed join/leave :class:`~repro.committee.ReconfigCommand` payloads,
so replaying the stream into a fresh :class:`~repro.core.Committer`
crosses several epoch activations mid-walk.  The stream is produced once
by a *driver* committer (membership per round follows the epochs the
driver's own walk activates) and then replayed round by round into fresh
committers for timing and equivalence checks:

* the **full-clear** baseline (:class:`FullClearCommitter`) reproduces
  the pre-PR-6 behavior — every epoch activation clears all cached
  decisions, cert memos, and elector state, then re-walks from the
  cursor;
* the **incremental** variant (plain :class:`~repro.core.Committer`)
  invalidates only state at rounds >= the activation (plus cached
  indirect decisions, whose anchors may sit above it).

Both must finalize byte-identical observation sequences — that is the
equivalence test — and the incremental walk must be strictly faster on
this workload — that is the recorded before/after comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.block import Block, make_genesis
from repro.committee import Committee, CommitteeSchedule, ReconfigCommand, reconfig_commands_in
from repro.config import ProtocolConfig
from repro.core.committer import CommitObservation, Committer
from repro.crypto.coin import CoinShare, CommonCoin
from repro.crypto.hashing import hash_parts
from repro.dag.store import DagStore
from repro.errors import InsufficientShares
from repro.transaction import Transaction

#: Default lockstep depth of the workload.
DEFAULT_ROUNDS = 40
#: Default activation lag (rounds between a command's slot and its
#: epoch's first round).
DEFAULT_LAG = 4


class _StreamCoin(CommonCoin):
    """A deterministic coin for stream building/replay: value 0 at every
    round (electing the epoch's first member), shares derived by
    hashing.  Reconstruction still demands ``threshold`` distinct
    shares, so election waits for the certify round like the real
    protocol."""

    def share(self, author: int, round_number: int) -> CoinShare:
        value = hash_parts(
            [author.to_bytes(4, "little"), round_number.to_bytes(8, "little")],
            person=b"walk-share",
        )
        return CoinShare(author=author, round=round_number, value=value)

    def verify_share(self, share: CoinShare) -> bool:
        return share == self.share(share.author, share.round)

    def reconstruct(
        self, round_number: int, shares: list[CoinShare], *, threshold: int | None = None
    ) -> int:
        required = 1 if threshold is None else threshold
        distinct = {s.author for s in shares if s.round == round_number and self.verify_share(s)}
        if len(distinct) < required:
            raise InsufficientShares(f"round {round_number}: {len(distinct)} < {required}")
        return 0


class FullClearCommitter(Committer):
    """The pre-PR-6 committer: epoch activation clears every decision
    cache and memo wholesale, forcing the walk to re-derive everything
    above the cursor from scratch.  Kept as the *before* side of the
    commit-walk comparison."""

    def _apply_reconfig(self, linearized: tuple[Block, ...], slot_round: int) -> bool:
        scheduled = False
        for command in reconfig_commands_in(linearized):
            epoch = self.schedule.apply_command(command, slot_round + self._reconfig_lag)
            scheduled = scheduled or epoch is not None
        if scheduled:
            self._decided.clear()
            self.traversal.invalidate_certs()
            self._elector.invalidate()
        return scheduled


@dataclass(frozen=True)
class EpochResizeStream:
    """The canonical workload: blocks grouped per round, in causal
    order, plus the deployment parameters a replayer needs."""

    rounds: tuple[tuple[Block, ...], ...]
    genesis_size: int
    provisioned: int
    lag: int

    @property
    def num_blocks(self) -> int:
        return sum(len(blocks) for blocks in self.rounds)


def _make_committer(
    stream_params: "EpochResizeStream | None",
    *,
    genesis_size: int,
    provisioned: int,
    lag: int,
    cls: type[Committer] = Committer,
) -> tuple[DagStore, Committer]:
    store = DagStore()
    store.add_genesis(make_genesis(genesis_size))
    schedule = CommitteeSchedule(Committee.of_size(genesis_size), provisioned=provisioned)
    committer = cls(
        store,
        schedule,
        _StreamCoin(),
        ProtocolConfig(wave_length=5, leaders_per_round=1, reconfig_activation_lag=lag),
    )
    return store, committer


def build_epoch_resize_stream(
    *,
    genesis_size: int = 4,
    provisioned: int = 7,
    rounds: int = DEFAULT_ROUNDS,
    lag: int = DEFAULT_LAG,
    txs_per_block: int = 2,
) -> EpochResizeStream:
    """Build the canonical epoch-resize block stream.

    Join commands for every spare provisioned validator are injected in
    the first third of the run and a leave for the last joiner near the
    two-thirds mark, so the committee grows and then shrinks while the
    commit walk is in flight — each committed command triggering one
    epoch activation mid-walk.
    """
    store, driver = _make_committer(
        None, genesis_size=genesis_size, provisioned=provisioned, lag=lag
    )
    coin = _StreamCoin()
    schedule = driver.schedule
    # Scripted membership commands: (round, command).
    spare = list(range(genesis_size, provisioned))
    scripted: dict[int, ReconfigCommand] = {}
    for i, validator in enumerate(spare):
        scripted[4 + 3 * i] = ReconfigCommand("join", validator)
    if spare:
        scripted[(rounds * 2) // 3] = ReconfigCommand("leave", spare[-1])
    tx_id = 0
    stream: list[tuple[Block, ...]] = []
    previous: list[Block] = list(make_genesis(genesis_size))
    for round_number in range(1, rounds + 1):
        members = sorted(schedule.committee_at(round_number).members)
        parents = tuple(block.reference for block in previous)
        command = scripted.get(round_number)
        this_round: list[Block] = []
        for author in members:
            transactions = []
            for _ in range(txs_per_block):
                tx_id += 1
                transactions.append(Transaction.dummy(tx_id))
            if command is not None and author == members[0]:
                tx_id += 1
                transactions.append(
                    Transaction(tx_id=tx_id, payload=command.encode_payload())
                )
            block = Block(
                author=author,
                round=round_number,
                parents=parents,
                transactions=tuple(transactions),
                coin_share=coin.share(author, round_number),
            )
            store.add(block)
            this_round.append(block)
        stream.append(tuple(this_round))
        previous = this_round
        # Drive the walk so committed commands activate and the *next*
        # rounds' membership follows the new epoch.
        driver.extend_commit_sequence()
    return EpochResizeStream(
        rounds=tuple(stream), genesis_size=genesis_size, provisioned=provisioned, lag=lag
    )


def replay_stream(
    stream: EpochResizeStream,
    *,
    committer_cls: type[Committer] = Committer,
    chunk_rounds: int = 1,
) -> tuple[list[CommitObservation], Committer]:
    """Replay the stream into a fresh committer, extending the commit
    sequence every ``chunk_rounds`` rounds.

    ``chunk_rounds=1`` is the smooth regime the sim runs in;
    larger chunks model a validator catching up (recovery, GC re-sync,
    a burst of deliveries): the walk window spans many rounds, so an
    epoch activation mid-walk restarts over a deep backlog — exactly
    where wholesale cache clearing hurts.  Returns all observations, in
    order."""
    store, committer = _make_committer(
        stream,
        genesis_size=stream.genesis_size,
        provisioned=stream.provisioned,
        lag=stream.lag,
        cls=committer_cls,
    )
    observations: list[CommitObservation] = []
    for index, blocks in enumerate(stream.rounds):
        for block in blocks:
            store.add(block)
        if (index + 1) % chunk_rounds == 0:
            observations.extend(committer.extend_commit_sequence())
    observations.extend(committer.extend_commit_sequence())
    return observations, committer


def replay_stream_oneshot(
    stream: EpochResizeStream, *, committer_cls: type[Committer] = Committer
) -> tuple[list[CommitObservation], Committer]:
    """Replay the whole stream, then walk once from scratch (the
    from-scratch reference the equivalence test compares against)."""
    store, committer = _make_committer(
        stream,
        genesis_size=stream.genesis_size,
        provisioned=stream.provisioned,
        lag=stream.lag,
        cls=committer_cls,
    )
    for blocks in stream.rounds:
        for block in blocks:
            store.add(block)
    return list(committer.extend_commit_sequence()), committer


def observation_fingerprint(observations: "list[CommitObservation]") -> bytes:
    """A byte-exact encoding of a finalized observation sequence: slot,
    decision, deciding rule, leader digest, and every linearized block
    digest, in order.  Two walks agree iff their fingerprints match."""
    parts: list[bytes] = []
    for obs in observations:
        status = obs.status
        parts.append(
            b"|".join(
                (
                    str(status.slot.round).encode(),
                    str(status.slot.offset).encode(),
                    str(status.slot.authority).encode(),
                    status.decision.name.encode(),
                    b"direct" if status.direct else b"indirect",
                    status.block.digest if status.block is not None else b"-",
                )
            )
        )
        parts.extend(block.digest for block in obs.linearized)
    return b"\x00".join(parts)
