"""Figure 5: impact of the number of leader slots per round (wave 4).

Mahi-Mahi-4 with 1, 2 and 3 leaders per round, 10 validators, zero and
three crash faults (Section 5.4; claim C4).  The paper reports latency
dropping by ~40 ms (ideal) and ~100 ms (faulty) going from 1 to 3
leaders, with no further gain beyond 3.

The sweeps are declared as data (``SWEEPS``) and consumed both by these
pytest-benchmark tests and by ``run_all.py``; ``bench_fig7_leaders_w5``
reuses the builders for the wave-5 variant.
"""

from __future__ import annotations

import pytest

from repro.sim.runner import ExperimentConfig
from repro.sim.sweep import FigureSpec, SweepSpec, run_configs

from .paper_data import LEADER_SWEEP_IMPROVEMENT, Row, bench_scale, print_table

WAVE_PROTOCOL = "mahi-mahi-4"
LEADERS = (1, 2, 3)


def leader_sweep_spec(figure: str, protocol: str, num_crashed: int, seed: int = 7) -> SweepSpec:
    """The leader-slot sweep for one protocol/fault combination."""
    scale = bench_scale()
    label = f"{num_crashed}-faults" if num_crashed else "ideal"
    return SweepSpec(
        name=f"fig{figure}-leaders-{protocol}-{label}",
        figure=FigureSpec(
            figure=figure,
            title=f"Figure {figure}: leader slots per round ({protocol}, {label})",
            x_axis="leaders_per_round",
            series_key="num_crashed",
            x_label="Leader slots per round",
            y_label="Average commit latency (s)",
            series_label="{} crash faults",
        ),
        configs=tuple(
            ExperimentConfig(
                protocol=protocol,
                num_validators=10,
                leaders_per_round=leaders,
                num_crashed=num_crashed,
                load_tps=20_000,
                duration=14.0 * scale,
                warmup=4.0 * scale,
                seed=seed,
            )
            for leaders in LEADERS
        ),
    )


SWEEPS = (
    leader_sweep_spec("5", WAVE_PROTOCOL, 0),
    leader_sweep_spec("5", WAVE_PROTOCOL, 3),
)


def run_leader_sweep(protocol: str, num_crashed: int, seed: int = 7, *, figure: str = "5"):
    """Run the leader sweep in-process, keyed by leader count."""
    spec = leader_sweep_spec(figure, protocol, num_crashed, seed)
    results = run_configs(spec.configs)
    return {r.config.leaders_per_round: r for r in results}


def report(protocol: str, num_crashed: int, results) -> None:
    paper_gain = (
        LEADER_SWEEP_IMPROVEMENT["faulty_ms"]
        if num_crashed
        else LEADER_SWEEP_IMPROVEMENT["ideal_ms"]
    )
    label = f"{num_crashed} faults" if num_crashed else "no faults"
    rows = [
        Row(
            label=f"{protocol}, {leaders} leader(s), {label}",
            paper="latency decreases with leaders",
            measured=f"{results[leaders].latency.avg * 1000:.0f} ms avg",
        )
        for leaders in LEADERS
    ]
    gain_ms = (results[1].latency.avg - results[3].latency.avg) * 1000
    rows.append(
        Row(
            label="1 -> 3 leaders improvement",
            paper=f"~{paper_gain:.0f} ms",
            measured=f"{gain_ms:.0f} ms",
        )
    )
    print_table(f"Figure 5 ({protocol}, {label})", rows)


@pytest.mark.parametrize("num_crashed", [0, 3])
def test_fig5_leader_sweep(benchmark, num_crashed):
    results = benchmark.pedantic(
        run_leader_sweep, args=(WAVE_PROTOCOL, num_crashed), rounds=1, iterations=1
    )
    report(WAVE_PROTOCOL, num_crashed, results)
    benchmark.extra_info.update(
        {f"latency_{k}_leaders_ms": results[k].latency.avg * 1000 for k in LEADERS}
    )
    # Claim C4: more leader slots never hurt, and help under faults.
    assert results[3].latency.avg <= results[1].latency.avg + 0.02
