#!/usr/bin/env python3
"""End-to-end localhost cluster benchmark (the runtime backend).

Every other benchmark in this directory measures the *simulator*; this
one measures the asyncio runtime the way the paper measures its Rust
implementation (Section 4): validators as separate OS processes over
real TCP sockets with fsynced write-ahead logs, driven by an open-loop
client fleet (:mod:`repro.runtime.process_cluster`).  Three scenarios:

* **steady** — sustained load against a healthy committee: end-to-end
  commit latency (avg/p50/p95, submission wall-clock to commit
  wall-clock on the same machine) and committed-transaction throughput;
* **recovery** — ``kill -9`` a validator mid-load and restart it in
  each recovery mode, recording per-mode recovery time (restart to
  first post-restart proposal).  Cold and warm run with GC disabled
  (they need fetchable history, like the simulator's crash-restart
  sweeps); checkpoint runs with GC *enabled* — the regime state
  transfer exists for — and must adopt a quorum-attested checkpoint;
* **resize** — a live committee resize under load: a provisioned-but-
  idle validator joins via checkpoint state transfer, then a founding
  member leaves and goes silent at its exclusion boundary.

Every scenario ends with the Theorem 1 assertion: byte-identical
committed prefixes across all validator incarnations
(:meth:`ProcessCluster.assert_consistent_prefixes`).  Results land in
``results/cluster/cluster_metrics.json`` and are validated by
:func:`benchmarks.curve_checks.check_cluster_metrics` (also enforced by
``run_all.py`` whenever the metrics file exists — the CI gate).

Usage::

    python benchmarks/bench_cluster.py --smoke     # seconds-long CI gate
    python benchmarks/bench_cluster.py             # longer measurement run
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for _path in (REPO_ROOT / "src", REPO_ROOT):
    if str(_path) not in sys.path:
        sys.path.insert(0, str(_path))

from repro.runtime.process_cluster import ProcessCluster  # noqa: E402

#: This module measures the runtime backend end to end; it declares no
#: simulator sweeps (run_all gates its metrics file instead).
SWEEPS = ()

#: Scenario knobs: (duration_s, offered_tps, min_block_interval_s).
FULL_PROFILE = {"duration": 15.0, "tps": 400.0, "interval": 0.02}
SMOKE_PROFILE = {"duration": 4.0, "tps": 120.0, "interval": 0.04}


def _base_config(**overrides) -> dict:
    config = {
        "wave_length": 5,
        "leaders_per_round": 2,
        "checkpoint_interval_rounds": 10,
        "garbage_collection_depth": 0,
        "reconfig_activation_lag": 10,
    }
    config.update(overrides)
    return config


def _telemetry(cluster: ProcessCluster, validators: range, elapsed: float) -> dict:
    """Live telemetry from each validator's status-JSON registry
    snapshot: commit rate, pending-queue depth, and sync activity."""
    out: dict[str, dict] = {}
    for validator in validators:
        status = cluster.status(validator) or {}
        metrics = status.get("metrics") or {}
        out[str(validator)] = {
            "commit_rate_tps": round(metrics.get("txs_committed", 0.0) / max(elapsed, 1e-9), 1),
            "blocks_proposed": metrics.get("blocks_proposed", 0.0),
            "pending_blocks": metrics.get("pending_blocks", 0.0),
            "missing_refs": metrics.get("missing_refs", 0.0),
            "sync_requests": metrics.get("sync_requests_sent", 0.0),
            "deep_sync_requests": metrics.get("sync_deep_requests_sent", 0.0),
            "round": metrics.get("round", 0.0),
        }
    return out


async def bench_steady(
    run_dir: Path, profile: dict, base_port: int, trace_dir: Path | None = None
) -> dict:
    """Sustained load against a healthy 4-validator committee."""
    cluster = ProcessCluster(
        4,
        base_port=base_port,
        run_dir=run_dir,
        config=_base_config(),
        min_block_interval=profile["interval"],
        trace=trace_dir is not None,
        trace_dir=trace_dir,
    )
    async with cluster:
        started = time.monotonic()
        submitted = await cluster.fleet.run_load(profile["tps"], profile["duration"])
        # Let the tail of the pipeline drain before the final reading.
        status = await cluster.wait_status(
            0,
            lambda s: s["tx_committed"] >= 0.9 * submitted,
            timeout=15.0,
            what="load tail committed",
        )
        elapsed = time.monotonic() - started
        telemetry = _telemetry(cluster, range(4), elapsed)
    indices = cluster.assert_consistent_prefixes()
    return {
        "telemetry": telemetry,
        "n": 4,
        "duration_s": round(elapsed, 3),
        "offered_tps": profile["tps"],
        "submitted_tx": submitted,
        "committed_tx": status["tx_committed"],
        "throughput_tps": round(status["tx_committed"] / elapsed, 1),
        "latency_avg_s": status["latency_avg"],
        "latency_p50_s": status["latency_p50"],
        "latency_p95_s": status["latency_p95"],
        "commit_indices": indices,
    }


async def bench_recovery(run_dir: Path, profile: dict, base_port: int) -> dict:
    """``kill -9`` + restart in each mode, one phase per mode.

    Each phase runs its own cluster so a mode's history length never
    depends on the previous mode's run.  Cold and warm keep the full
    DAG history (GC off); the checkpoint phase enables GC so adoption +
    suffix fetch is the *only* way back in.
    """
    victim = 3
    per_mode: dict[str, dict] = {}
    for mode in ("cold", "warm", "checkpoint"):
        gc_depth = 64 if mode == "checkpoint" else 0
        phase_dir = run_dir / mode
        cluster = ProcessCluster(
            4,
            base_port=base_port,
            run_dir=phase_dir,
            config=_base_config(garbage_collection_depth=gc_depth),
            min_block_interval=profile["interval"],
        )
        async with cluster:
            load = asyncio.create_task(
                cluster.fleet.run_load(profile["tps"], profile["duration"] + 3.0)
            )
            await cluster.wait_status(
                0, lambda s: s["committed_blocks"] > 30, what="steady commits"
            )
            cluster.kill(victim)
            killed_at = time.monotonic()
            await asyncio.sleep(1.0)  # history accrues while the victim is down
            await cluster.restart(victim, recover_mode=mode)
            status = await cluster.wait_status(
                victim,
                lambda s: s["recovery_time"] is not None
                and s["recovery_error"] is None,
                timeout=30.0,
                what=f"{mode} recovery",
            )
            downtime = time.monotonic() - killed_at
            victim_metrics = status.get("metrics") or {}
            await load
        indices = cluster.assert_consistent_prefixes()
        per_mode[mode] = {
            "recovery_s": round(status["recovery_time"], 4),
            "downtime_s": round(downtime, 3),
            "mode_used": status["recovery_mode_used"],
            "gc_depth": gc_depth,
            "adopted_base_round": status["adopted_base_round"],
            "commit_indices": indices,
            # The victim's re-sync activity: how the recovery actually
            # proceeded (shallow fetches vs chunked deep re-sync).
            "victim_sync_requests": victim_metrics.get("sync_requests_sent", 0.0),
            "victim_deep_sync_requests": victim_metrics.get(
                "sync_deep_requests_sent", 0.0
            ),
            "victim_blocks_received": victim_metrics.get("blocks_received", 0.0),
        }
    return per_mode


async def bench_resize(run_dir: Path, profile: dict, base_port: int) -> dict:
    """Live committee resize under load: join, then leave."""
    cluster = ProcessCluster(
        4,
        base_port=base_port,
        run_dir=run_dir,
        provisioned=6,
        config=_base_config(garbage_collection_depth=64),
        min_block_interval=profile["interval"],
    )
    joiner, leaver = 4, 2
    async with cluster:
        load = asyncio.create_task(
            cluster.fleet.run_load(profile["tps"], 2.5 * profile["duration"])
        )
        await cluster.wait_status(
            0, lambda s: s["committed_blocks"] > 30, what="steady commits"
        )
        # Join: the newcomer state-transfers in (its history floor sits
        # behind every peer's GC horizon, so checkpoint is the only way).
        cluster.spawn(joiner, recover_mode="checkpoint")
        await cluster.wait_ready([joiner])
        await cluster.submit_reconfig("join", joiner)
        await cluster.wait_status(
            0,
            lambda s: any(e[0] == 1 for e in s["epochs"]),
            timeout=30.0,
            what="join epoch scheduled",
        )
        joiner_status = await cluster.wait_status(
            joiner,
            lambda s: s["recovery_time"] is not None and s["recovery_error"] is None,
            timeout=30.0,
            what="joiner recovered and proposing",
        )
        # Leave: a founding member is voted out and must observe its own
        # exclusion boundary to go silent.
        await cluster.submit_reconfig("leave", leaver)
        leaver_status = await cluster.wait_status(
            leaver, lambda s: s["left"], timeout=30.0, what="leaver observes exit"
        )
        await load
    indices = cluster.assert_consistent_prefixes()
    final_epoch = leaver_status["epochs"][-1]
    return {
        "epochs": leaver_status["epochs"],
        "final_committee": final_epoch[2],
        "joiner_recovery_s": round(joiner_status["recovery_time"], 4),
        "joiner_mode": joiner_status["recovery_mode_used"],
        "leaver_left": leaver_status["left"],
        "commit_indices": indices,
    }


async def run_benchmark(
    results_dir: Path, *, smoke: bool, base_port: int, trace: bool = False
) -> dict:
    profile = SMOKE_PROFILE if smoke else FULL_PROFILE
    metrics: dict = {"mode": "smoke" if smoke else "full", "profile": profile}
    # Traces land beside the cluster metrics, under results/trace/:
    # one Chrome trace JSON (+ JSONL span log) per validator process.
    trace_dir = results_dir.parent / "trace" / "cluster" if trace else None
    with tempfile.TemporaryDirectory(prefix="repro-cluster-") as tmp:
        tmp_dir = Path(tmp)
        print(f"bench_cluster[steady]: {profile['duration']}s at {profile['tps']} tps")
        metrics["steady"] = await bench_steady(
            tmp_dir / "steady", profile, base_port, trace_dir
        )
        print(
            f"bench_cluster[steady]: {metrics['steady']['throughput_tps']} tx/s, "
            f"p50 {metrics['steady']['latency_p50_s']:.3f}s"
        )
        print("bench_cluster[recovery]: kill -9 + restart per mode")
        metrics["recovery"] = await bench_recovery(
            tmp_dir / "recovery", profile, base_port + 10
        )
        for mode, entry in metrics["recovery"].items():
            print(f"bench_cluster[recovery]: {mode} -> {entry['recovery_s']}s")
        print("bench_cluster[resize]: live join + leave")
        metrics["resize"] = await bench_resize(tmp_dir / "resize", profile, base_port + 20)
        print(
            f"bench_cluster[resize]: final committee {metrics['resize']['final_committee']}, "
            f"joiner in {metrics['resize']['joiner_recovery_s']}s"
        )
    results_dir.mkdir(parents=True, exist_ok=True)
    out = results_dir / "cluster_metrics.json"
    out.write_text(json.dumps(metrics, indent=2, sort_keys=True))
    print(f"bench_cluster: wrote {out}")
    if trace_dir is not None:
        traces = sorted(trace_dir.glob("*.trace.json"))
        print(f"bench_cluster: {len(traces)} trace files -> {trace_dir}/")
    return metrics


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="seconds-long run (the CI gate)"
    )
    parser.add_argument(
        "--results",
        default=None,
        help="results directory (default: results/cluster, or REPRO_RESULTS_DIR/cluster)",
    )
    parser.add_argument(
        "--base-port", type=int, default=30300, help="first TCP port of the sweep"
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record per-validator lifecycle traces in the steady scenario "
        "and export Chrome trace JSON under results/trace/cluster/",
    )
    args = parser.parse_args(argv)
    results_root = args.results or os.environ.get("REPRO_RESULTS_DIR") or "results"
    results_dir = Path(results_root) / "cluster"
    metrics = asyncio.run(
        run_benchmark(
            results_dir, smoke=args.smoke, base_port=args.base_port, trace=args.trace
        )
    )

    from benchmarks.curve_checks import check_cluster_metrics

    violations = check_cluster_metrics(metrics)
    for violation in violations:
        print(f"bench_cluster: FAIL - {violation}")
    if violations:
        return 1
    print("bench_cluster: all cluster gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
