"""Programmatic curve-shape checks against the paper's numbers.

``paper_data.py`` carries the latency/throughput figures quoted in the
paper's evaluation; this module checks that *measured* sweep results
reproduce the robust qualitative shape of those curves — the protocol
orderings the paper's claims rest on — without requiring pixel-perfect
absolute values from a discrete-event simulator.

The rule is data-driven: within every group of results that differ only
in protocol (same committee size, load, fault pattern, seed), any pair
of protocols whose *paper* latencies differ by at least
:data:`MIN_PAPER_RATIO` must show the same ordering in the measured
averages.  A 2x paper gap (e.g. Tusk's 3.5 s vs Mahi-Mahi-5's 1.1 s in
Figure 3) is far outside smoke-run noise; sub-2x gaps (Cordial Miners
vs Mahi-Mahi-5 under faults) are deliberately not enforced at smoke
durations.

Used by ``run_all.py`` after every run and by the regression tests in
``tests/benchmarks/test_curve_shapes.py``.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Iterable

from repro.sim.runner import ExperimentResult
from repro.sim.sweep import config_hash

from .paper_data import FIG3_10_NODES, FIG3_50_NODES, FIG4_FAULTS

#: Only enforce orderings the paper separates by at least this factor.
MIN_PAPER_RATIO = 2.0


def paper_table_for_config(cfg) -> dict[str, dict] | None:
    """The paper reference table matching a config's fault pattern and
    committee size, or ``None`` when the paper has no matching figure
    (ablations, adversary sweeps, recovery workloads...)."""
    if cfg.num_equivocators or cfg.adversary_targets or cfg.num_recovering:
        return None
    if cfg.fault_schedule or cfg.wave_length_override or not cfg.direct_skip:
        return None
    if cfg.num_crashed >= 3:
        return FIG4_FAULTS
    if cfg.num_crashed:
        return None
    return FIG3_50_NODES if cfg.num_validators >= 50 else FIG3_10_NODES


def paper_table_for(result: ExperimentResult) -> dict[str, dict] | None:
    """:func:`paper_table_for_config` over a result's config."""
    return paper_table_for_config(result.config)


def group_by_shape(results: Iterable[ExperimentResult]) -> dict[str, dict[str, ExperimentResult]]:
    """Group results that differ only in protocol.

    The key is the config hash with the protocol field neutralized, so
    points from different sweeps that share committee size, load, fault
    pattern and seed land in the same comparison group.
    """
    groups: dict[str, dict[str, ExperimentResult]] = {}
    for result in results:
        key = config_hash(replace(result.config, protocol="mahi-mahi-5"))
        groups.setdefault(key, {})[result.config.protocol] = result
    return groups


def check_curve_shapes(results: Iterable[ExperimentResult]) -> list[str]:
    """Check measured protocol orderings against the paper's curves.

    Returns a list of human-readable violations (empty = every enforced
    ordering holds).  Results without a matching paper figure, or with
    unmeasurable latency, are skipped.
    """
    violations = []
    for group in group_by_shape(results).values():
        sample = next(iter(group.values()))
        table = paper_table_for(sample)
        if table is None:
            continue
        protocols = [
            p
            for p, r in group.items()
            if p in table and not math.isnan(r.latency.avg)
        ]
        for i, first in enumerate(protocols):
            for second in protocols[i + 1:]:
                fast, slow = first, second
                paper_fast = table[fast]["latency_s"]
                paper_slow = table[slow]["latency_s"]
                if paper_fast > paper_slow:
                    fast, slow = slow, fast
                    paper_fast, paper_slow = paper_slow, paper_fast
                if paper_slow < MIN_PAPER_RATIO * paper_fast:
                    continue  # the paper itself separates them too little
                measured_fast = group[fast].latency.avg
                measured_slow = group[slow].latency.avg
                if measured_fast >= measured_slow:
                    cfg = group[fast].config
                    violations.append(
                        f"{fast} should beat {slow} on latency "
                        f"(paper {paper_fast:.2f}s vs {paper_slow:.2f}s) but measured "
                        f"{measured_fast:.3f}s vs {measured_slow:.3f}s "
                        f"(n={cfg.num_validators}, load={cfg.load_tps:.0f}, "
                        f"crashed={cfg.num_crashed})"
                    )
    return violations
