"""Programmatic curve-shape checks against the paper's numbers.

``paper_data.py`` carries the latency/throughput figures quoted in the
paper's evaluation; this module checks that *measured* sweep results
reproduce the robust qualitative shape of those curves — the protocol
orderings the paper's claims rest on — without requiring pixel-perfect
absolute values from a discrete-event simulator.

The rule is data-driven: within every group of results that differ only
in protocol (same committee size, load, fault pattern, seed), any pair
of protocols whose *paper* latencies differ by at least
:data:`MIN_PAPER_RATIO` must show the same ordering in the measured
averages.  A 2x paper gap (e.g. Tusk's 3.5 s vs Mahi-Mahi-5's 1.1 s in
Figure 3) is far outside smoke-run noise; sub-2x gaps (Cordial Miners
vs Mahi-Mahi-5 under faults) are deliberately not enforced at smoke
durations.

Beyond protocol orderings, :func:`check_recovery_curves` enforces the
recovery-mode shape claims: a warm (WAL-replay) restart must be
strictly faster than a cold (refetch-to-genesis) one on the same
schedule, and — when a sweep varies the run duration — cold recovery
must grow with history length while checkpoint state transfer stays
~flat (the whole point of recovering from a committed frontier instead
of genesis).

Used by ``run_all.py`` after every run and by the regression tests in
``tests/benchmarks/test_curve_shapes.py``.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Iterable

from repro.sim.runner import ExperimentResult
from repro.sim.sweep import config_hash

from .paper_data import FIG3_10_NODES, FIG3_50_NODES, FIG4_FAULTS

#: Only enforce orderings the paper separates by at least this factor.
MIN_PAPER_RATIO = 2.0

#: Checkpoint recovery must stay within this factor of itself across
#: the duration axis ("~flat"), while cold-to-genesis grows.
CHECKPOINT_FLAT_FACTOR = 3.0

#: Epoch-reconfiguration points at or above this duration must show the
#: *whole* membership timeline activated (growth and shrink); shorter
#: (smoke-shrunk) runs only have time for the early joins to commit and
#: activate, so they are held to growth alone.
EPOCH_FULL_DURATION = 8.0


def paper_table_for_config(cfg) -> dict[str, dict] | None:
    """The paper reference table matching a config's fault pattern and
    committee size, or ``None`` when the paper has no matching figure
    (ablations, adversary sweeps, recovery workloads...)."""
    if cfg.num_equivocators or cfg.adversary_targets or cfg.num_recovering:
        return None
    if cfg.leader_dos_slots or cfg.wan_matrix:
        return None
    if cfg.fault_schedule or cfg.wave_length_override or not cfg.direct_skip:
        return None
    if cfg.num_crashed >= 3:
        return FIG4_FAULTS
    if cfg.num_crashed:
        return None
    return FIG3_50_NODES if cfg.num_validators >= 50 else FIG3_10_NODES


def paper_table_for(result: ExperimentResult) -> dict[str, dict] | None:
    """:func:`paper_table_for_config` over a result's config."""
    return paper_table_for_config(result.config)


def group_by_shape(results: Iterable[ExperimentResult]) -> dict[str, dict[str, ExperimentResult]]:
    """Group results that differ only in protocol.

    The key is the config hash with the protocol field neutralized, so
    points from different sweeps that share committee size, load, fault
    pattern and seed land in the same comparison group.
    """
    groups: dict[str, dict[str, ExperimentResult]] = {}
    for result in results:
        key = config_hash(replace(result.config, protocol="mahi-mahi-5"))
        groups.setdefault(key, {})[result.config.protocol] = result
    return groups


def _mode_group_key(cfg) -> str:
    """Hash of a config with the recovery mode neutralized: results in
    the same group differ only in how the restart re-syncs."""
    return config_hash(replace(cfg, recover_mode="cold", checkpoint_interval=0))


def _scaling_group_key(cfg) -> tuple:
    """Results in the same group differ only in recovery mode and run
    duration (schedule event times are normalized to duration
    fractions, since they scale with it)."""
    return (
        cfg.protocol,
        cfg.num_validators,
        cfg.load_tps,
        cfg.gc_depth,
        cfg.sync_chunk_blocks,
        cfg.seed,
        tuple(
            (round(e.time / cfg.duration, 6), e.validator, e.kind)
            for e in cfg.fault_schedule
        ),
        cfg.num_recovering,
    )


def check_recovery_curves(results: Iterable[ExperimentResult]) -> list[str]:
    """Enforce the recovery-mode shape claims (module docstring).

    * warm < cold on the same schedule (any scale, smoke included);
    * over a duration axis: cold grows with history, checkpoint stays
      within :data:`CHECKPOINT_FLAT_FACTOR` of itself and beats cold at
      the longest history.
    """
    violations = []
    results = [
        r
        for r in results
        if r.recovery_time_s is not None and r.config.recover_mode
    ]
    # (1) warm strictly below cold at matched schedule.
    by_schedule: dict[str, dict[str, ExperimentResult]] = {}
    for result in results:
        by_schedule.setdefault(_mode_group_key(result.config), {})[
            result.config.recover_mode
        ] = result
    for group in by_schedule.values():
        cold, warm = group.get("cold"), group.get("warm")
        if cold is None or warm is None:
            continue
        if warm.recovery_time_s >= cold.recovery_time_s:
            cfg = warm.config
            violations.append(
                f"warm (WAL) restart should beat cold restart on the same schedule but "
                f"measured {warm.recovery_time_s:.3f}s vs {cold.recovery_time_s:.3f}s "
                f"(duration={cfg.duration:.0f}s, load={cfg.load_tps:.0f})"
            )
    # (2) shape over the duration axis.
    by_shape: dict[tuple, dict[str, dict[float, float]]] = {}
    for result in results:
        modes = by_shape.setdefault(_scaling_group_key(result.config), {})
        modes.setdefault(result.config.recover_mode, {})[
            result.config.duration
        ] = result.recovery_time_s
    for modes in by_shape.values():
        cold = modes.get("cold", {})
        checkpoint = modes.get("checkpoint", {})
        if len(cold) >= 2 and cold[max(cold)] <= cold[min(cold)]:
            violations.append(
                f"cold-to-genesis recovery should grow with history length but measured "
                f"{cold[min(cold)]:.3f}s at {min(cold):.0f}s vs "
                f"{cold[max(cold)]:.3f}s at {max(cold):.0f}s"
            )
        if len(checkpoint) >= 2:
            low, high = checkpoint[min(checkpoint)], checkpoint[max(checkpoint)]
            if high > CHECKPOINT_FLAT_FACTOR * low:
                violations.append(
                    f"checkpoint recovery should stay ~flat as history grows but measured "
                    f"{low:.3f}s at {min(checkpoint):.0f}s vs {high:.3f}s at "
                    f"{max(checkpoint):.0f}s (> {CHECKPOINT_FLAT_FACTOR}x)"
                )
        if len(cold) >= 2 and len(checkpoint) >= 2:
            top = max(cold)
            if top in checkpoint and checkpoint[top] >= cold[top]:
                violations.append(
                    f"checkpoint recovery should beat cold-to-genesis at the longest "
                    f"history ({top:.0f}s) but measured {checkpoint[top]:.3f}s vs "
                    f"{cold[top]:.3f}s"
                )
    return violations


def check_epoch_curves(results: Iterable[ExperimentResult]) -> list[str]:
    """Enforce the epoch-reconfiguration shape claims.

    Every ``epoch_reconfig`` point must show ``n`` genuinely changing
    mid-run: at least one epoch transition activated, and the committee
    grown past its initial size (thresholds follow the active epoch —
    the quorum arithmetic itself is regression-tested in
    ``tests/sim/test_epoch_reconfig.py``; this gate checks the sweep
    exercised it).  Full-scale points must additionally complete the
    shrink half of the timeline and end with a fully-available final
    committee (a departed validator must stop counting against
    availability once its excluding epoch activates).
    """
    violations = []
    for result in results:
        cfg = result.config
        if not getattr(cfg, "epoch_reconfig", False):
            continue
        initial = cfg.initial_committee_size or cfg.num_validators
        label = f"(n={cfg.num_validators}, load={cfg.load_tps:.0f}, duration={cfg.duration:.0f}s)"
        if result.epoch_transitions < 1:
            violations.append(
                f"epoch-reconfig point activated no epoch transition {label}"
            )
            continue
        sizes = [row["size"] for row in result.epoch_summary]
        if not sizes or max(sizes) <= initial:
            violations.append(
                f"epoch-reconfig point never grew the committee past its initial "
                f"n={initial} {label}"
            )
            continue
        if cfg.duration >= EPOCH_FULL_DURATION:
            if result.final_committee_size >= max(sizes):
                violations.append(
                    f"full-scale epoch-reconfig point should shrink the committee "
                    f"after its peak (max n={max(sizes)}) but ended at "
                    f"n={result.final_committee_size} {label}"
                )
            if result.epoch_summary[-1]["availability"] < 1.0:
                violations.append(
                    f"final epoch's member set should be fully available once "
                    f"leavers stop counting, got "
                    f"{result.epoch_summary[-1]['availability']:.3f} {label}"
                )
    return violations


#: Adversary shape claims that need room for stalled load to drain
#: (partition-tail monotonicity) are only enforced at or above this
#: duration; smoke-shrunk runs end before campaign-era commits land.
ADVERSARY_FULL_DURATION = 8.0


def _scenario_group_key(cfg) -> str:
    """Hash of a config with its fault schedule neutralized: results in
    the same group differ only in scenario intensity (partition window,
    straggler count, campaign count)."""
    return config_hash(replace(cfg, fault_schedule=()))


def _schedule_kinds(cfg) -> set[str]:
    return {event.kind for event in cfg.fault_schedule}


def check_adversary_curves(results: Iterable[ExperimentResult]) -> list[str]:
    """Enforce the adversary-scenario shape claims (``bench_adversary``).

    Scale-independent (smoke included): equivocation campaigns actually
    equivocate without breaking liveness, partitions drop cross-links
    and cost availability in proportion to the window, the multi-slot
    leader-DoS point out-commits the single-slot one (relative to its
    own no-DoS baseline), stragglers trail the round frontier and thin
    throughput, and the metro WAN matrix beats both wide-area spreads.
    Tail-latency monotonicity over the partition window additionally
    needs the run to outlive the heal by a commit latency, so it is
    held to full-scale durations (:data:`ADVERSARY_FULL_DURATION`).
    """
    violations = []
    results = list(results)
    # (1) Equivocation campaigns: conflicting blocks really went out,
    # and the honest committee kept committing around them.
    for r in results:
        label = f"(duration={r.config.duration:.0f}s, load={r.config.load_tps:.0f})"
        if r.config.campaign_equivocators:
            if r.equivocations <= 0:
                violations.append(
                    f"{r.config.campaign_equivocators} equivocation campaign(s) "
                    f"scheduled but no conflicting block was ever sent {label}"
                )
            if r.blocks_committed <= 0:
                violations.append(
                    f"equivocation campaign stalled the honest committee "
                    f"(0 blocks committed) {label}"
                )
        if _schedule_kinds(r.config) & {"partition", "heal"}:
            if r.messages_dropped <= 0:
                violations.append(
                    f"partition point dropped no cross-partition message {label}"
                )
            if r.availability >= 1.0:
                violations.append(
                    f"partitioned validators still counted fully available {label}"
                )
        if "straggle" in _schedule_kinds(r.config):
            if r.max_rounds_behind <= 0:
                violations.append(
                    f"{r.config.straggler_count} straggler(s) scheduled but nobody "
                    f"trailed the observer's round frontier {label}"
                )
    # (2) Shape over the partition-window / straggler-count axes.  The
    # inner dicts are keyed by full config hash so a config shared by
    # several sweeps (the clean baseline) lands in a group only once.
    partition_groups: dict[str, dict[str, ExperimentResult]] = {}
    straggler_groups: dict[str, dict[str, ExperimentResult]] = {}
    for r in results:
        kinds = _schedule_kinds(r.config)
        if kinds <= {"partition", "heal"}:
            partition_groups.setdefault(_scenario_group_key(r.config), {})[
                config_hash(r.config)
            ] = r
        if kinds <= {"straggle"}:
            straggler_groups.setdefault(_scenario_group_key(r.config), {})[
                config_hash(r.config)
            ] = r
    for members in partition_groups.values():
        group = sorted(members.values(), key=lambda r: r.config.partition_seconds)
        if len({r.config.partition_seconds for r in group}) < 2:
            continue
        avail = [r.availability for r in group]
        if any(b >= a for a, b in zip(avail, avail[1:])):
            violations.append(
                "availability should fall strictly with the partition window, "
                f"measured {[round(a, 3) for a in avail]} over windows "
                f"{[round(r.config.partition_seconds, 2) for r in group]}s"
            )
        if group[0].config.duration >= ADVERSARY_FULL_DURATION:
            p99 = [r.latency.p99 for r in group]
            if any(math.isnan(v) for v in p99) or any(
                b <= a for a, b in zip(p99, p99[1:])
            ):
                violations.append(
                    "p99 commit latency should grow strictly with the partition "
                    f"window (stalled load lives in the tail), measured "
                    f"{[round(v, 3) for v in p99]}s over windows "
                    f"{[round(r.config.partition_seconds, 2) for r in group]}s"
                )
    for members in straggler_groups.values():
        group = sorted(members.values(), key=lambda r: r.config.straggler_count)
        if len({r.config.straggler_count for r in group}) < 2:
            continue
        clean, worst = group[0], group[-1]
        if worst.throughput_tps >= clean.throughput_tps:
            violations.append(
                f"{worst.config.straggler_count} straggler(s) should thin committee "
                f"throughput but measured {worst.throughput_tps:.0f} tx/s vs "
                f"{clean.throughput_tps:.0f} tx/s clean"
            )
    # (3) Leader DoS: each DoS point is normalized against its own
    # no-DoS baseline; more leader slots must mean a better ratio (the
    # multi-leader resilience claim), and the widest pipeline must keep
    # committing under attack.
    dos_keys = {
        config_hash(replace(r.config, leader_dos_slots=0))
        for r in results
        if r.config.leader_dos_slots
    }
    dos_pairs: dict[str, dict[int, ExperimentResult]] = {}
    for r in results:
        key = config_hash(replace(r.config, leader_dos_slots=0))
        if key in dos_keys:
            dos_pairs.setdefault(key, {})[r.config.leader_dos_slots] = r
    ratios: dict[tuple, dict[int, float]] = {}
    for pair in dos_pairs.values():
        baseline = pair.get(0)
        attacked = next((r for s, r in pair.items() if s), None)
        if baseline is None or attacked is None or baseline.throughput_tps <= 0:
            continue
        cfg = attacked.config
        key = config_hash(replace(cfg, leader_dos_slots=0, leaders_per_round=1))
        ratios.setdefault(key, {})[cfg.leaders_per_round] = (
            attacked.throughput_tps / baseline.throughput_tps
        )
        if cfg.leaders_per_round > 1 and attacked.blocks_committed <= 0:
            violations.append(
                f"leader DoS fully censored the {cfg.leaders_per_round}-slot "
                f"pipeline (0 blocks committed) — the extra anchors should "
                f"ride through (delay={cfg.leader_dos_delay:.1f}s)"
            )
    for by_slots in ratios.values():
        if len(by_slots) < 2:
            continue
        narrow, wide = min(by_slots), max(by_slots)
        if by_slots[narrow] >= by_slots[wide]:
            violations.append(
                f"leader DoS should hurt the {narrow}-slot pipeline more than the "
                f"{wide}-slot one, measured throughput ratios "
                f"{by_slots[narrow]:.2f} vs {by_slots[wide]:.2f}"
            )
    # (4) WAN matrices: latency tracks the deployment's RTT scale.
    wan_groups: dict[str, dict[str, ExperimentResult]] = {}
    for r in results:
        if r.config.wan_matrix:
            key = config_hash(replace(r.config, wan_matrix="", region_assignment=()))
            wan_groups.setdefault(key, {})[r.config.wan_matrix] = r
    for group in wan_groups.values():
        metro = group.get("metro-3")
        if metro is None or math.isnan(metro.latency.avg):
            continue
        for wide in ("paper-5", "global-10"):
            other = group.get(wide)
            if other is None or math.isnan(other.latency.avg):
                continue
            if metro.latency.avg >= other.latency.avg:
                violations.append(
                    f"metro-3 (sub-ms paths) should beat {wide} on commit latency "
                    f"but measured {metro.latency.avg:.3f}s vs "
                    f"{other.latency.avg:.3f}s"
                )
    return violations


def check_curve_shapes(results: Iterable[ExperimentResult]) -> list[str]:
    """Check measured protocol orderings against the paper's curves.

    Returns a list of human-readable violations (empty = every enforced
    ordering holds).  Results without a matching paper figure, or with
    unmeasurable latency, are skipped.
    """
    violations = []
    for group in group_by_shape(results).values():
        sample = next(iter(group.values()))
        table = paper_table_for(sample)
        if table is None:
            continue
        protocols = [
            p
            for p, r in group.items()
            if p in table and not math.isnan(r.latency.avg)
        ]
        for i, first in enumerate(protocols):
            for second in protocols[i + 1:]:
                fast, slow = first, second
                paper_fast = table[fast]["latency_s"]
                paper_slow = table[slow]["latency_s"]
                if paper_fast > paper_slow:
                    fast, slow = slow, fast
                    paper_fast, paper_slow = paper_slow, paper_fast
                if paper_slow < MIN_PAPER_RATIO * paper_fast:
                    continue  # the paper itself separates them too little
                measured_fast = group[fast].latency.avg
                measured_slow = group[slow].latency.avg
                if measured_fast >= measured_slow:
                    cfg = group[fast].config
                    violations.append(
                        f"{fast} should beat {slow} on latency "
                        f"(paper {paper_fast:.2f}s vs {paper_slow:.2f}s) but measured "
                        f"{measured_fast:.3f}s vs {measured_slow:.3f}s "
                        f"(n={cfg.num_validators}, load={cfg.load_tps:.0f}, "
                        f"crashed={cfg.num_crashed})"
                    )
    return violations


def check_cluster_metrics(metrics: dict) -> list[str]:
    """Validate a ``bench_cluster.py`` metrics dict (the runtime gate).

    The localhost multi-process benchmark is the runtime's end-to-end
    proof; this check enforces the claims it exists to demonstrate:
    liveness under load, successful recovery in every mode (with
    checkpoint recovery actually *adopting* a state-transfer base
    rather than silently refetching), and a completed live resize.
    Prefix consistency itself is asserted inside the benchmark — a
    divergence aborts the run before a metrics file is ever written.
    """
    violations: list[str] = []
    steady = metrics.get("steady")
    if not steady:
        violations.append("cluster metrics carry no steady-load scenario")
    else:
        if steady["committed_tx"] <= 0:
            violations.append("steady-load run committed no transactions")
        if steady["commit_indices"] <= 0:
            violations.append("steady-load run covered no commit indices")
        if steady.get("latency_p50_s") is None:
            violations.append("steady-load run measured no commit latency")
        elif steady["latency_p50_s"] > 10.0:
            violations.append(
                f"steady-load p50 commit latency {steady['latency_p50_s']:.2f}s "
                f"is implausible for a localhost cluster (> 10s)"
            )
    recovery = metrics.get("recovery") or {}
    for mode in ("cold", "warm", "checkpoint"):
        entry = recovery.get(mode)
        if entry is None:
            violations.append(f"recovery scenario is missing mode '{mode}'")
            continue
        if entry["mode_used"] != mode:
            violations.append(
                f"{mode} restart actually recovered via "
                f"'{entry['mode_used']}' — the requested mode never ran"
            )
        if entry["recovery_s"] is None or entry["recovery_s"] < 0:
            violations.append(f"{mode} recovery recorded no recovery time")
    checkpoint = recovery.get("checkpoint")
    if checkpoint is not None and not checkpoint.get("adopted_base_round"):
        violations.append(
            "checkpoint recovery never adopted a transferred base — it "
            "rebuilt from local history, which GC should have made impossible"
        )
    resize = metrics.get("resize")
    if not resize:
        violations.append("cluster metrics carry no resize scenario")
    else:
        epoch_ids = {info[0] for info in resize["epochs"]}
        if not {1, 2} <= epoch_ids:
            violations.append(
                f"live resize should schedule a join and a leave epoch, "
                f"saw epoch ids {sorted(epoch_ids)}"
            )
        if not resize.get("leaver_left"):
            violations.append("leaver never observed its own exclusion boundary")
        if resize.get("joiner_mode") != "checkpoint":
            violations.append(
                f"joiner should enter via checkpoint state transfer, "
                f"used '{resize.get('joiner_mode')}'"
            )
    return violations
