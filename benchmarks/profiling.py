"""Profiling support for the reproduction driver (``repro-bench --profile``).

Two complementary captures run over the same in-process workload:

* **cProfile** — exact call counts and per-function totals, written as
  ``pstats`` top-N tables (``<name>_cumulative.txt``, sorted by
  cumulative time, answers "which subsystem"; ``<name>_tottime.txt``,
  sorted by self time, answers "which function body").
* **a sampling stack profiler** — a daemon thread snapshots the profiled
  thread's stack via :func:`sys._current_frames` at a fixed interval and
  folds the samples into the collapsed-stack format
  (``frame;frame;frame count`` per line, ``<name>.collapsed``) that
  ``flamegraph.pl``, speedscope, and ``inferno-flamegraph`` consume
  directly.  cProfile's tracing cannot reconstruct whole stacks; the
  sampler captures them, at the price of being statistical.

Everything here is pure stdlib, so the profile artifact is produced on
any CI runner without extra dependencies.
"""

from __future__ import annotations

import cProfile
import pstats
import sys
import threading
import time
from collections import Counter
from contextlib import contextmanager
from pathlib import Path
from types import FrameType

#: Rows kept in each pstats top-N table.
TOP_N = 40
#: Seconds between stack samples (2 ms = 500 Hz; a smoke profile of a
#: few seconds still collects thousands of stacks).
SAMPLE_INTERVAL = 0.002


class StackSampler:
    """Samples one thread's call stack and folds the samples.

    The sampler thread wakes every ``interval`` seconds, grabs the
    target thread's current frame from :func:`sys._current_frames`, and
    counts the folded ``module:function`` chain.  Sampling is read-only
    and needs no cooperation from the profiled code.
    """

    def __init__(self, interval: float = SAMPLE_INTERVAL) -> None:
        self._interval = interval
        self._target_ident: int | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.samples: Counter[str] = Counter()

    def start(self) -> None:
        """Begin sampling the *calling* thread."""
        self._target_ident = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-stack-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def _run(self) -> None:
        assert self._target_ident is not None
        while not self._stop.wait(self._interval):
            frame = sys._current_frames().get(self._target_ident)
            if frame is not None:
                self.samples[self._fold(frame)] += 1

    @staticmethod
    def _fold(frame: FrameType | None) -> str:
        """Root-to-leaf ``module:function`` chain for one stack."""
        parts: list[str] = []
        while frame is not None:
            code = frame.f_code
            module = Path(code.co_filename).stem
            parts.append(f"{module}:{code.co_name}")
            frame = frame.f_back
        parts.reverse()
        return ";".join(parts)

    def write_collapsed(self, path: Path) -> int:
        """Write the folded samples (``stack count`` per line, most
        frequent first).  Returns the total sample count."""
        lines = [
            f"{stack} {count}"
            for stack, count in sorted(
                self.samples.items(), key=lambda item: (-item[1], item[0])
            )
        ]
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return sum(self.samples.values())


def write_top_tables(
    profile: cProfile.Profile, out_dir: Path, name: str, top_n: int = TOP_N
) -> list[Path]:
    """Write the two pstats top-N tables for ``profile``."""
    out_dir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for sort_key, suffix in (("cumulative", "cumulative"), ("tottime", "tottime")):
        path = out_dir / f"{name}_{suffix}.txt"
        with path.open("w") as handle:
            stats = pstats.Stats(profile, stream=handle)
            stats.strip_dirs().sort_stats(sort_key).print_stats(top_n)
        written.append(path)
    return written


@contextmanager
def profiled(out_dir: Path, name: str = "sweeps", top_n: int = TOP_N):
    """Run the body under cProfile *and* the stack sampler.

    On exit, writes ``<name>_cumulative.txt``, ``<name>_tottime.txt``
    and ``<name>.collapsed`` into ``out_dir`` and yields (via the
    context object) the list of files written.
    """
    out_dir.mkdir(parents=True, exist_ok=True)
    profile = cProfile.Profile()
    sampler = StackSampler()
    outputs: list[Path] = []
    sampler.start()
    started = time.perf_counter()
    profile.enable()
    try:
        yield outputs
    finally:
        profile.disable()
        wall = time.perf_counter() - started
        sampler.stop()
        outputs.extend(write_top_tables(profile, out_dir, name, top_n))
        collapsed = out_dir / f"{name}.collapsed"
        samples = sampler.write_collapsed(collapsed)
        outputs.append(collapsed)
        print(
            f"repro-bench: profile written -> {out_dir}/ "
            f"({samples} stack samples over {wall:.1f}s; "
            f"feed {collapsed.name} to flamegraph.pl or speedscope)"
        )
