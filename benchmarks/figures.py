#!/usr/bin/env python3
"""Deprecated alias for :mod:`benchmarks.render`.

This module used to re-run experiments and print paper-vs-measured
tables to stdout.  Both halves now have better homes:

* running sweeps: ``repro-bench [--smoke] [--only figN]`` (the cached,
  parallel engine in ``benchmarks/run_all.py``);
* figures and tables: ``python -m benchmarks.render`` renders
  ``results/figures/*.svg`` and ``results/REPORT.md`` — including the
  deviation tables this module used to print — from the cached results.

See ``benchmarks/README.md`` and ``docs/EXPERIMENTS.md`` for the
recorded paper-vs-measured comparison workflow.  ``python -m
benchmarks.figures`` keeps working as an alias for the renderer.
"""

from __future__ import annotations

import argparse
import sys
import warnings

from .render import main as render_main

warnings.warn(
    "benchmarks.figures is a deprecated alias; run sweeps with repro-bench "
    "and render with `python -m benchmarks.render`",
    DeprecationWarning,
    stacklevel=2,
)


def main(argv: list[str] | None = None) -> int:
    # Swallow the old CLI's flags so documented invocations like
    # `--figure 3 --scale 3` still run (they render everything from the
    # cache; re-running sweeps is repro-bench's job now).
    parser = argparse.ArgumentParser(prog="benchmarks.figures", description=__doc__)
    parser.add_argument("--figure", default="all", help=argparse.SUPPRESS)
    parser.add_argument("--scale", type=float, default=None, help=argparse.SUPPRESS)
    args, rest = parser.parse_known_args(argv)
    print(
        "benchmarks.figures is deprecated: running `python -m benchmarks.render` "
        "(run sweeps first with `repro-bench --smoke` or `repro-bench`"
        + (
            f"; --figure {args.figure}/--scale no longer re-run sweeps, "
            "all cached figures are rendered"
            if args.figure != "all" or args.scale is not None
            else ""
        )
        + ")",
        file=sys.stderr,
    )
    return render_main(rest)


if __name__ == "__main__":
    raise SystemExit(main())
