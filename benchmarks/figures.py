#!/usr/bin/env python3
"""Standalone figure regeneration CLI (no pytest needed).

Usage::

    python -m benchmarks.figures --figure 3          # one figure
    python -m benchmarks.figures --figure all        # everything
    python -m benchmarks.figures --figure 4 --scale 3  # longer runs

Prints the same paper-vs-measured tables as the pytest-benchmark
modules; see EXPERIMENTS.md for the recorded comparison.
"""

from __future__ import annotations

import argparse
import os
import time


def _figure3() -> None:
    from repro.sim.runner import ExperimentConfig, PROTOCOLS, run_load_sweep

    from .bench_fig3_ideal import LOADS_10
    from .paper_data import FIG3_10_NODES, Row, bench_scale, print_table

    scale = bench_scale()
    for protocol in PROTOCOLS:
        base = ExperimentConfig(
            protocol=protocol,
            num_validators=10,
            duration=20.0 * scale,
            warmup=5.0 * scale,
            seed=3,
        )
        results = run_load_sweep(base, LOADS_10)
        paper = FIG3_10_NODES[protocol]
        print_table(
            f"Figure 3 (10 validators) - {protocol}",
            [
                Row(
                    label=f"@ {r.config.load_tps / 1000:.0f}k tx/s",
                    paper=f"{paper['latency_s']:.2f}s @ <= {paper['peak_tps'] / 1000:.0f}k",
                    measured=f"{r.latency.avg:.2f}s, {r.throughput_tps / 1000:.1f}k tx/s",
                )
                for r in results
            ],
        )


def _figure4() -> None:
    from repro.sim.runner import Experiment, ExperimentConfig, PROTOCOLS

    from .paper_data import FIG4_FAULTS, Row, bench_scale, print_table

    scale = bench_scale()
    rows = []
    for protocol in PROTOCOLS:
        config = ExperimentConfig(
            protocol=protocol,
            num_validators=10,
            num_crashed=3,
            load_tps=10_000,
            duration=12.0 * scale,
            warmup=4.0 * scale,
            seed=5,
        )
        result = Experiment(config).run()
        rows.append(
            Row(
                label=protocol,
                paper=f"{FIG4_FAULTS[protocol]['latency_s']:.2f}s",
                measured=(
                    f"{result.latency.avg:.2f}s, skips "
                    f"{result.direct_skips}/{result.indirect_skips}"
                ),
            )
        )
    print_table("Figure 4 (10 validators, 3 crash faults)", rows)


def _leader_sweep(figure: str, protocol: str) -> None:
    from .bench_fig5_leaders_w4 import report, run_leader_sweep

    for crashed in (0, 3):
        report(protocol, crashed, run_leader_sweep(protocol, crashed, figure=figure))


def _figure5() -> None:
    _leader_sweep("5", "mahi-mahi-4")


def _figure7() -> None:
    _leader_sweep("7", "mahi-mahi-5")


FIGURES = {"3": _figure3, "4": _figure4, "5": _figure5, "7": _figure7}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--figure",
        choices=[*FIGURES, "all"],
        default="all",
        help="which paper figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="duration multiplier (sets REPRO_BENCH_SCALE)",
    )
    args = parser.parse_args()
    if args.scale is not None:
        os.environ["REPRO_BENCH_SCALE"] = str(args.scale)
    targets = FIGURES.values() if args.figure == "all" else [FIGURES[args.figure]]
    for target in targets:
        started = time.time()
        target()
        print(f"\n[{target.__name__.lstrip('_')} done in {time.time() - started:.0f}s]")


if __name__ == "__main__":
    main()
