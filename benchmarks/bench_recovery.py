"""Crash-recovery and reconfiguration workloads.

The paper evaluates crash faults as the production-relevant failure
mode (Section 5.3) but only as validators going silent forever.  These
sweeps exercise the other half of production reality: a crashed
validator *restarts* with an empty in-memory state, re-syncs the DAG
behind the commit frontier through the fetch path, and rejoins
proposing — plus reconfiguration (validators joining and leaving
mid-run) and mixed transaction-size workloads.

Three sweeps:

* ``recovery-crash-restart`` — ``num_recovering`` validators crash a
  quarter into the run and restart at the halfway mark; the figure
  tracks the recovery time (restart -> first post-restart proposal) per
  protocol.  Certified DAGs pay more: the restarted validator re-syncs
  certificates, not bare blocks.
* ``reconfig-join-leave`` — one validator joins mid-run (provisioned
  but silent until then) and another leaves permanently; the figure
  tracks end-to-end latency across the membership change.
* ``mixed-tx-sizes`` — clients draw transaction sizes from a skewed
  distribution (mostly small, a heavy tail of large) instead of the
  uniform 512 B of Section 5.1.

Recovery sweeps disable garbage collection (``gc_depth=0``): a
restarted validator re-syncs from genesis, so the full causal history
must remain fetchable at any duration/scale.
"""

from __future__ import annotations

import pytest

from repro.sim.faults import FaultEvent
from repro.sim.runner import ExperimentConfig
from repro.sim.sweep import FigureSpec, SweepSpec, run_configs

from .paper_data import Row, bench_scale, print_table

_SCALE = bench_scale()
_DURATION = 16.0 * _SCALE
_WARMUP = 4.0 * _SCALE

RECOVERY_PROTOCOLS = ("mahi-mahi-5", "cordial-miners", "tusk")
LOADS = [5_000, 20_000]

SWEEP_RECOVERY = SweepSpec(
    name="recovery-crash-restart",
    figure=FigureSpec(
        figure="recovery",
        title="Crash-recovery: restart, re-sync, resume proposing",
        y_axis="recovery_time_s",
        x_label="Offered load (tx/s)",
        y_label="Recovery time (s)",
    ),
    configs=tuple(
        ExperimentConfig(
            protocol=protocol,
            num_validators=10,
            num_recovering=2,
            load_tps=load,
            duration=_DURATION,
            warmup=_WARMUP,
            gc_depth=0,
            seed=7,
        )
        for protocol in RECOVERY_PROTOCOLS
        for load in LOADS
    ),
)

SWEEP_RECONFIG = SweepSpec(
    name="reconfig-join-leave",
    figure=FigureSpec(
        figure="reconfig",
        title="Reconfiguration: one validator joins, one leaves",
        x_label="Offered load (tx/s)",
        y_label="Average commit latency (s)",
    ),
    configs=tuple(
        ExperimentConfig(
            protocol=protocol,
            num_validators=10,
            load_tps=load,
            duration=_DURATION,
            warmup=_WARMUP,
            gc_depth=0,
            fault_schedule=(
                FaultEvent(time=0.3 * _DURATION, validator=8, kind="join"),
                FaultEvent(time=0.6 * _DURATION, validator=9, kind="leave"),
            ),
            seed=7,
        )
        for protocol in ("mahi-mahi-5", "cordial-miners")
        for load in LOADS
    ),
)

#: Mostly-small transactions with a heavy tail: 70% 128 B, 25% 512 B,
#: 5% 4 KiB (a payment-plus-contract-deployment style mix).
TX_SIZE_MIX = ((128, 0.70), (512, 0.25), (4096, 0.05))

SWEEP_MIXED_SIZES = SweepSpec(
    name="mixed-tx-sizes",
    figure=FigureSpec(
        figure="mixed-sizes",
        title="Mixed transaction sizes (128 B / 512 B / 4 KiB)",
        x_label="Offered load (tx/s)",
        y_label="Average commit latency (s)",
    ),
    configs=tuple(
        ExperimentConfig(
            protocol="mahi-mahi-5",
            num_validators=10,
            load_tps=load,
            duration=_DURATION,
            warmup=_WARMUP,
            tx_size_mix=TX_SIZE_MIX,
            seed=7,
        )
        for load in LOADS
    ),
)

SWEEPS = (SWEEP_RECOVERY, SWEEP_RECONFIG, SWEEP_MIXED_SIZES)


@pytest.mark.parametrize("protocol", RECOVERY_PROTOCOLS)
def test_recovery_restart_and_resync(benchmark, protocol):
    """A crashed validator restarts, re-syncs via fetch, resumes
    proposing, and the safety check covers it (run() asserts prefix
    consistency with the recovered validator included)."""
    configs = [c for c in SWEEP_RECOVERY.configs if c.protocol == protocol]
    results = benchmark.pedantic(run_configs, args=(configs,), rounds=1, iterations=1)
    rows = []
    for r in results:
        assert r.recoveries == r.config.num_recovering
        assert r.recovery_time_s is not None and r.recovery_time_s > 0
        assert r.availability < 1.0
        rows.append(
            Row(
                label=f"{protocol} @ {r.config.load_tps / 1000:.0f}k tx/s",
                paper="(new workload)",
                measured=(
                    f"recovery {r.recovery_time_s:.3f}s avg "
                    f"(max {r.recovery_time_max_s:.3f}s), "
                    f"availability {r.availability:.3f}, "
                    f"latency {r.latency.avg:.2f}s"
                ),
            )
        )
    print_table(f"Crash-recovery - {protocol}", rows)
    benchmark.extra_info["recovery_time_s"] = results[0].recovery_time_s


def test_recovery_certified_resync_costs_more(benchmark):
    """Tusk's restarted validator re-syncs certified vertices (the
    2f+1-signature verification overhead of Section 2.2), so its
    recovery takes longer than Mahi-Mahi's at matched load."""

    def run_pair():
        configs = [
            c
            for c in SWEEP_RECOVERY.configs
            if c.protocol in ("mahi-mahi-5", "tusk") and c.load_tps == LOADS[0]
        ]
        return {r.config.protocol: r for r in run_configs(configs)}

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    mahi, tusk = results["mahi-mahi-5"], results["tusk"]
    print_table(
        "Recovery: uncertified vs certified re-sync",
        [
            Row("mahi-mahi-5", "(new workload)", f"{mahi.recovery_time_s:.3f}s"),
            Row("tusk", "(new workload)", f"{tusk.recovery_time_s:.3f}s"),
        ],
    )
    assert mahi.recovery_time_s < tusk.recovery_time_s


def test_reconfiguration_preserves_liveness(benchmark):
    results = benchmark.pedantic(
        run_configs, args=(SWEEP_RECONFIG.configs,), rounds=1, iterations=1
    )
    rows = []
    for r in results:
        assert r.blocks_committed > 0
        assert r.recoveries >= 1  # the join completed
        rows.append(
            Row(
                label=f"{r.config.protocol} @ {r.config.load_tps / 1000:.0f}k tx/s",
                paper="(new workload)",
                measured=(
                    f"latency {r.latency.avg:.2f}s, availability {r.availability:.3f}, "
                    f"join sync {r.recovery_time_s:.3f}s"
                ),
            )
        )
    print_table("Reconfiguration: join + leave", rows)


def test_mixed_tx_sizes_account_bytes(benchmark):
    results = benchmark.pedantic(
        run_configs, args=(SWEEP_MIXED_SIZES.configs,), rounds=1, iterations=1
    )
    rows = []
    for r in results:
        assert r.blocks_committed > 0
        rows.append(
            Row(
                label=f"mixed sizes @ {r.config.load_tps / 1000:.0f}k tx/s",
                paper="(new workload)",
                measured=f"latency {r.latency.avg:.2f}s, {r.bytes_sent / 1e6:.1f} MB sent",
            )
        )
    print_table("Mixed transaction sizes", rows)
