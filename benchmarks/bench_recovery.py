"""Crash-recovery, state-transfer and reconfiguration workloads.

The paper evaluates crash faults as the production-relevant failure
mode (Section 5.3) but only as validators going silent forever.  These
sweeps exercise the other half of production reality: a crashed
validator *restarts* with an empty in-memory state, re-syncs, and
rejoins proposing — via three recovery paths (cold refetch, warm WAL
replay, checkpoint state transfer), plus reconfiguration (validators
joining and leaving mid-run) and mixed transaction-size workloads.

Six sweeps:

* ``recovery-crash-restart`` — ``num_recovering`` validators crash a
  quarter into the run and restart at the halfway mark; the figure
  tracks the recovery time (restart -> first post-restart proposal) per
  protocol.  Certified DAGs pay more: the restarted validator re-syncs
  certificates, not bare blocks.  Runs with garbage collection *on*
  (``gc_depth=64``): the restarted validator adopts a quorum-attested
  checkpoint (``repro.statesync``) and fetches only the suffix above
  its floor, so nothing behind the peers' pruning horizon is needed.
* ``recovery-modes`` — cold vs warm vs checkpoint recovery time as the
  run (and hence the history a cold restart must refetch) grows.  The
  headline curve shape: cold-to-genesis grows with history length,
  checkpoint state transfer stays ~flat, and warm WAL replay is the
  cheapest throughout — it also grows with history (replay touches the
  whole log) but at a fraction of cold's per-block cost, since replay
  is local CPU work instead of network round trips.  Enforced (at full
  scale, where the duration axis survives smoke shrinking) by
  ``benchmarks/curve_checks.check_recovery_curves``.
* ``recovery-gc-horizon`` — crash-recovery with an aggressive
  ``gc_depth=20``: by restart time the peers have pruned the history a
  cold restart would need (the sim raises a diagnostic for that
  combination — see ``test_cold_restart_past_gc_horizon_diagnoses``);
  warm replays its own WAL and fetches the delta, checkpoint adopts and
  suffix-fetches.  This is the long-run regime the paper's fault
  experiments assume away.
* ``reconfig-join-leave`` — one validator joins mid-run (provisioned
  but silent until then, syncing in via checkpoint state transfer) and
  another leaves permanently; the figure tracks end-to-end latency
  across the membership change.  Quorum thresholds stay static (the
  legacy behaviour this sweep pins down).
* ``reconfig-epoch-resize`` — *true* committee reconfiguration: with
  ``epoch_reconfig`` on, join/leave events submit committed membership
  commands and ``n`` itself resizes 4 -> 7 -> 5 mid-run
  (:class:`repro.committee.CommitteeSchedule`), quorum thresholds
  following the active epoch; joiners state-transfer in, leavers exit
  when their excluding epoch activates, and the per-epoch attribution
  (``epoch_summary``) splits latency and availability by committee.
* ``mixed-tx-sizes`` — clients draw transaction sizes from a skewed
  distribution (mostly small, a heavy tail of large) instead of the
  uniform 512 B of Section 5.1.

Recovery sweeps bound each deep-fetch response (``sync_chunk_blocks``)
like a real synchronizer's request batches, so re-sync cost scales with
the history actually fetched rather than collapsing into one oversized
response.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.faults import FaultEvent
from repro.sim.runner import ExperimentConfig
from repro.sim.sweep import FigureSpec, SweepSpec, run_configs

from .paper_data import Row, bench_scale, print_table

_SCALE = bench_scale()
_DURATION = 16.0 * _SCALE
_WARMUP = 4.0 * _SCALE

RECOVERY_PROTOCOLS = ("mahi-mahi-5", "cordial-miners", "tusk")
LOADS = [5_000, 20_000]

#: Crash/recover points for the mode-comparison sweeps, as fractions of
#: the duration: crash with most of the run's history accumulated,
#: restart shortly after so the warm delta stays small — smoke-mode
#: shrinking rescales the absolute times and keeps the shape.
MODE_CRASH_FRAC = 0.6
MODE_RECOVER_FRAC = 0.7

#: Bounded deep-fetch responses for the recovery-mode sweeps (must stay
#: above the cluster's block production per fetch round trip).
SYNC_CHUNK = 24

SWEEP_RECOVERY = SweepSpec(
    name="recovery-crash-restart",
    figure=FigureSpec(
        figure="recovery",
        title="Crash-recovery with GC: restart, checkpoint adoption, resume",
        y_axis="recovery_time_s",
        x_label="Offered load (tx/s)",
        y_label="Recovery time (s)",
    ),
    configs=tuple(
        ExperimentConfig(
            protocol=protocol,
            num_validators=10,
            num_recovering=2,
            load_tps=load,
            duration=_DURATION,
            warmup=_WARMUP,
            gc_depth=64,
            recover_mode="checkpoint",
            checkpoint_interval=1,
            seed=7,
        )
        for protocol in RECOVERY_PROTOCOLS
        for load in LOADS
    ),
)


def _mode_config(mode: str, duration: float, **overrides) -> ExperimentConfig:
    defaults = dict(
        protocol="mahi-mahi-5",
        num_validators=10,
        load_tps=5_000,
        duration=duration,
        warmup=duration / 4,
        gc_depth=0,
        recover_mode=mode,
        checkpoint_interval=2 if mode == "checkpoint" else 0,
        sync_chunk_blocks=SYNC_CHUNK,
        fault_schedule=(
            FaultEvent(time=MODE_CRASH_FRAC * duration, validator=9, kind="crash"),
            FaultEvent(time=MODE_RECOVER_FRAC * duration, validator=9, kind="recover"),
        ),
        seed=7,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


#: History lengths for the warm-vs-cold-vs-checkpoint comparison.
MODE_DURATIONS = tuple(d * _SCALE for d in (8.0, 16.0, 32.0))

SWEEP_RECOVERY_MODES = SweepSpec(
    name="recovery-modes",
    figure=FigureSpec(
        figure="recovery-modes",
        title="Recovery modes: cold refetch vs warm WAL replay vs checkpoint transfer",
        x_axis="duration",
        y_axis="recovery_time_s",
        series_key="recover_mode",
        x_label="Run duration before restart window (s)",
        y_label="Recovery time (s)",
        series_label="{} restart",
    ),
    configs=tuple(
        _mode_config(mode, duration)
        for mode in ("cold", "warm", "checkpoint")
        for duration in MODE_DURATIONS
    ),
)

SWEEP_RECOVERY_GC = SweepSpec(
    name="recovery-gc-horizon",
    figure=FigureSpec(
        figure="recovery-gc",
        title="Recovery past the GC horizon (gc_depth=20): WAL replay & state transfer",
        y_axis="recovery_time_s",
        series_key="recover_mode",
        x_label="Offered load (tx/s)",
        y_label="Recovery time (s)",
        series_label="{} restart",
    ),
    configs=tuple(
        _mode_config(
            mode,
            _DURATION,
            load_tps=load,
            gc_depth=20,
            sync_chunk_blocks=4096,
        )
        for mode in ("warm", "checkpoint")
        for load in LOADS
    ),
)

SWEEP_RECONFIG = SweepSpec(
    name="reconfig-join-leave",
    figure=FigureSpec(
        figure="reconfig",
        title="Reconfiguration: one validator joins (state transfer), one leaves",
        x_label="Offered load (tx/s)",
        y_label="Average commit latency (s)",
    ),
    configs=tuple(
        ExperimentConfig(
            protocol=protocol,
            num_validators=10,
            load_tps=load,
            duration=_DURATION,
            warmup=_WARMUP,
            gc_depth=64,
            recover_mode="checkpoint",
            checkpoint_interval=1,
            fault_schedule=(
                FaultEvent(time=0.3 * _DURATION, validator=8, kind="join"),
                FaultEvent(time=0.6 * _DURATION, validator=9, kind="leave"),
            ),
            seed=7,
        )
        for protocol in ("mahi-mahi-5", "cordial-miners")
        for load in LOADS
    ),
)

#: The epoch-resize membership timeline, as ``(time fraction, validator,
#: kind)``: the committee grows 4 -> 5 -> 6 -> 7 through three staggered
#: state-transfer joins, then shrinks 7 -> 6 -> 5 through two committed
#: leaves.  Joins land early so every epoch activates even at smoke
#: durations; the leaves need the full-scale run to activate (enforced
#: by ``curve_checks.check_epoch_curves`` above the smoke horizon).
EPOCH_RESIZE_TIMELINE = (
    (0.08, 4, "join"),
    (0.16, 5, "join"),
    (0.24, 6, "join"),
    (0.50, 6, "leave"),
    (0.62, 5, "leave"),
)

SWEEP_EPOCH_RESIZE = SweepSpec(
    name="reconfig-epoch-resize",
    figure=FigureSpec(
        figure="epoch-resize",
        title="Epoch reconfiguration: n resizes 4 -> 7 -> 5 mid-run",
        y_axis="latency_avg_s",
        x_label="Offered load (tx/s)",
        y_label="Average commit latency (s)",
    ),
    configs=tuple(
        ExperimentConfig(
            protocol="mahi-mahi-5",
            num_validators=7,
            initial_committee_size=4,
            epoch_reconfig=True,
            load_tps=load,
            duration=_DURATION,
            warmup=_WARMUP,
            gc_depth=64,
            recover_mode="checkpoint",
            checkpoint_interval=2,
            fault_schedule=tuple(
                FaultEvent(time=frac * _DURATION, validator=validator, kind=kind)
                for frac, validator, kind in EPOCH_RESIZE_TIMELINE
            ),
            seed=7,
        )
        for load in LOADS
    ),
)

#: Mostly-small transactions with a heavy tail: 70% 128 B, 25% 512 B,
#: 5% 4 KiB (a payment-plus-contract-deployment style mix).
TX_SIZE_MIX = ((128, 0.70), (512, 0.25), (4096, 0.05))

SWEEP_MIXED_SIZES = SweepSpec(
    name="mixed-tx-sizes",
    figure=FigureSpec(
        figure="mixed-sizes",
        title="Mixed transaction sizes (128 B / 512 B / 4 KiB)",
        x_label="Offered load (tx/s)",
        y_label="Average commit latency (s)",
    ),
    configs=tuple(
        ExperimentConfig(
            protocol="mahi-mahi-5",
            num_validators=10,
            load_tps=load,
            duration=_DURATION,
            warmup=_WARMUP,
            tx_size_mix=TX_SIZE_MIX,
            seed=7,
        )
        for load in LOADS
    ),
)

SWEEPS = (
    SWEEP_RECOVERY,
    SWEEP_RECOVERY_MODES,
    SWEEP_RECOVERY_GC,
    SWEEP_RECONFIG,
    SWEEP_EPOCH_RESIZE,
    SWEEP_MIXED_SIZES,
)


@pytest.mark.parametrize("protocol", RECOVERY_PROTOCOLS)
def test_recovery_restart_and_resync(benchmark, protocol):
    """A crashed validator restarts with GC enabled, adopts a
    quorum-attested checkpoint, suffix-fetches, resumes proposing, and
    the safety check covers it (run() verifies the recovered sequence
    aligns with the reference through the adopted state digest)."""
    configs = [c for c in SWEEP_RECOVERY.configs if c.protocol == protocol]
    results = benchmark.pedantic(run_configs, args=(configs,), rounds=1, iterations=1)
    rows = []
    for r in results:
        assert r.recoveries == r.config.num_recovering
        assert r.recovery_time_s is not None and r.recovery_time_s > 0
        assert r.checkpoint_adoptions >= r.config.num_recovering
        assert r.checkpoints_captured > 0
        assert r.availability < 1.0
        rows.append(
            Row(
                label=f"{protocol} @ {r.config.load_tps / 1000:.0f}k tx/s",
                paper="(new workload)",
                measured=(
                    f"recovery {r.recovery_time_s:.3f}s avg "
                    f"(max {r.recovery_time_max_s:.3f}s), "
                    f"{r.checkpoint_adoptions} checkpoint adoptions, "
                    f"availability {r.availability:.3f}, "
                    f"latency {r.latency.avg:.2f}s"
                ),
            )
        )
    print_table(f"Crash-recovery (gc_depth=64) - {protocol}", rows)
    benchmark.extra_info["recovery_time_s"] = results[0].recovery_time_s


def test_recovery_certified_resync_costs_more(benchmark):
    """Tusk's restarted validator re-syncs certified vertices (the
    2f+1-signature verification overhead of Section 2.2), so its
    recovery takes longer than Mahi-Mahi's at matched load."""

    def run_pair():
        configs = [
            c
            for c in SWEEP_RECOVERY.configs
            if c.protocol in ("mahi-mahi-5", "tusk") and c.load_tps == LOADS[0]
        ]
        return {r.config.protocol: r for r in run_configs(configs)}

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    mahi, tusk = results["mahi-mahi-5"], results["tusk"]
    print_table(
        "Recovery: uncertified vs certified re-sync",
        [
            Row("mahi-mahi-5", "(new workload)", f"{mahi.recovery_time_s:.3f}s"),
            Row("tusk", "(new workload)", f"{tusk.recovery_time_s:.3f}s"),
        ],
    )
    assert mahi.recovery_time_s < tusk.recovery_time_s


def test_recovery_mode_ordering(benchmark):
    """On the same schedule, a warm (WAL-replay) restart is strictly
    faster than a cold (refetch-to-genesis) one, and all three modes
    report their path in the per-mode metric split."""

    def run_modes():
        configs = [
            c for c in SWEEP_RECOVERY_MODES.configs if c.duration == MODE_DURATIONS[0]
        ]
        return {r.config.recover_mode: r for r in run_configs(configs)}

    results = benchmark.pedantic(run_modes, rounds=1, iterations=1)
    rows = []
    for mode in ("cold", "warm", "checkpoint"):
        r = results[mode]
        assert r.recoveries == 1
        assert r.recovery_time_s is not None
        assert list(r.recovery_time_by_mode) == [mode]
        rows.append(
            Row(
                label=f"{mode} restart",
                paper="(new workload)",
                measured=f"recovery {r.recovery_time_s:.3f}s",
            )
        )
    print_table("Recovery modes at matched history", rows)
    assert results["warm"].recovery_time_s < results["cold"].recovery_time_s
    assert results["checkpoint"].checkpoint_adoptions == 1


def test_recovery_past_gc_horizon(benchmark):
    """With gc_depth=20 the peers prune the history a restart needs;
    warm replay and checkpoint transfer both still complete."""

    def run_gc():
        configs = [c for c in SWEEP_RECOVERY_GC.configs if c.load_tps == LOADS[0]]
        return {r.config.recover_mode: r for r in run_configs(configs)}

    results = benchmark.pedantic(run_gc, rounds=1, iterations=1)
    rows = []
    for mode, r in sorted(results.items()):
        assert r.config.gc_depth == 20
        assert r.recoveries == 1
        assert r.recovery_time_s is not None
        rows.append(
            Row(
                label=f"{mode} restart, gc_depth=20",
                paper="(new workload)",
                measured=f"recovery {r.recovery_time_s:.3f}s",
            )
        )
    print_table("Recovery past the GC horizon", rows)
    assert results["checkpoint"].checkpoint_adoptions == 1


def test_cold_restart_past_gc_horizon_diagnoses():
    """A cold restart whose needed history is behind the peers' GC
    horizon fails with a clear diagnostic instead of livelocking."""
    config = _mode_config(
        "cold", _DURATION, gc_depth=20, sync_chunk_blocks=4096
    )
    with pytest.raises(SimulationError, match="garbage-collection horizon"):
        run_configs([config])


def test_reconfiguration_preserves_liveness(benchmark):
    results = benchmark.pedantic(
        run_configs, args=(SWEEP_RECONFIG.configs,), rounds=1, iterations=1
    )
    rows = []
    for r in results:
        assert r.blocks_committed > 0
        assert r.recoveries >= 1  # the join completed
        rows.append(
            Row(
                label=f"{r.config.protocol} @ {r.config.load_tps / 1000:.0f}k tx/s",
                paper="(new workload)",
                measured=(
                    f"latency {r.latency.avg:.2f}s, availability {r.availability:.3f}, "
                    f"join sync {r.recovery_time_s:.3f}s"
                ),
            )
        )
    print_table("Reconfiguration: join + leave", rows)


def test_epoch_resize_thresholds_follow_committee(benchmark):
    """The tentpole workload: n resizes 4 -> 7 -> 5 through committed
    join/leave commands; every epoch activates at the same round on
    every honest validator (asserted by run()'s safety check), joiners
    sync in via state transfer and propose once active, leavers exit at
    their excluding epoch, and the per-epoch attribution carries the
    committee sizes."""
    results = benchmark.pedantic(
        run_configs, args=(SWEEP_EPOCH_RESIZE.configs,), rounds=1, iterations=1
    )
    rows = []
    for r in results:
        assert r.config.epoch_reconfig
        # All five commands committed and activated: 4->5->6->7->6->5.
        assert r.epoch_transitions == 5
        assert r.final_committee_size == 5
        sizes = [row["size"] for row in r.epoch_summary]
        assert sizes == [4, 5, 6, 7, 6, 5]
        assert r.recoveries >= 3  # each joiner synced and proposed
        assert r.checkpoint_adoptions >= 3
        # Availability recovers once leavers stop counting against the
        # (shrunken) committee: the final epoch's member set is fully up.
        assert r.epoch_summary[-1]["availability"] == 1.0
        rows.append(
            Row(
                label=f"epoch resize @ {r.config.load_tps / 1000:.0f}k tx/s",
                paper="(new workload)",
                measured=(
                    f"{r.epoch_transitions} epochs, n {sizes[0]}->{max(sizes)}->"
                    f"{sizes[-1]}, join sync {r.recovery_time_s:.3f}s, "
                    f"latency {r.latency.avg:.2f}s"
                ),
            )
        )
    print_table("Epoch reconfiguration: committee resize", rows)


def test_mixed_tx_sizes_account_bytes(benchmark):
    results = benchmark.pedantic(
        run_configs, args=(SWEEP_MIXED_SIZES.configs,), rounds=1, iterations=1
    )
    rows = []
    for r in results:
        assert r.blocks_committed > 0
        rows.append(
            Row(
                label=f"mixed sizes @ {r.config.load_tps / 1000:.0f}k tx/s",
                paper="(new workload)",
                measured=f"latency {r.latency.avg:.2f}s, {r.bytes_sent / 1e6:.1f} MB sent",
            )
        )
    print_table("Mixed transaction sizes", rows)
