#!/usr/bin/env python3
"""One-command reproduction driver (``repro-bench``).

Collects every sweep declared by the ``bench_*`` modules (their
``SWEEPS`` tuples) and executes them through the parallel, cached sweep
engine (:mod:`repro.sim.sweep`).  Finished points land in
``results/points/<config-hash>.json``; per-sweep series summaries in
``results/<sweep>.json``; a run-level roll-up in
``results/summary.json``.  Re-running resumes: cached points are served
near-instantly, only missing ones compute.

Usage::

    python benchmarks/run_all.py --smoke          # seconds-long CI gate
    python benchmarks/run_all.py                  # full figure sweeps
    python benchmarks/run_all.py --only fig3      # one figure's sweeps
    python benchmarks/run_all.py --list           # show the sweep plan
    python benchmarks/run_all.py --scale 3        # longer runs
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Benchmark modules that declare sweeps, in execution order.
BENCH_MODULES = (
    "benchmarks.bench_fig3_ideal",
    "benchmarks.bench_fig4_faults",
    "benchmarks.bench_fig5_leaders_w4",
    "benchmarks.bench_fig7_leaders_w5",
    "benchmarks.bench_ablations",
    "benchmarks.bench_commit_probability",
    "benchmarks.bench_recovery",
    "benchmarks.bench_adversary",
    # bench_cluster declares no simulator sweeps (SWEEPS = ()): it is a
    # standalone multi-process runtime benchmark, run separately as
    # `python benchmarks/bench_cluster.py [--smoke]`.  Its metrics file
    # is gated below whenever it exists.
    "benchmarks.bench_cluster",
)


def _bootstrap_sys_path() -> None:
    """Make ``repro`` and ``benchmarks`` importable from a checkout."""
    for path in (REPO_ROOT / "src", REPO_ROOT):
        entry = str(path)
        if entry not in sys.path:
            sys.path.insert(0, entry)


def discover_sweeps() -> list:
    """All declared sweeps, in module order."""
    sweeps = []
    for module_name in BENCH_MODULES:
        module = importlib.import_module(module_name)
        sweeps.extend(getattr(module, "SWEEPS", ()))
    return sweeps


def run_traced_point(results_dir: Path, *, smoke: bool) -> Path:
    """Run one lifecycle-traced experiment and export its trace.

    The point runs directly through :class:`~repro.sim.runner.Experiment`
    rather than the cached sweep engine — a cache hit would skip
    execution and produce no events.  The protocol is Tusk (the one
    certified baseline), so the export exhibits *every* lifecycle stage
    including ``block_certified``; the Mahi-Mahi protocols are
    uncertified by design and would legitimately lack that stage.
    """
    from repro.obs.export import write_chrome_trace, write_jsonl
    from repro.sim.runner import Experiment, ExperimentConfig

    config = ExperimentConfig(
        protocol="tusk",
        num_validators=10,
        load_tps=500.0,
        duration=6.0 if smoke else 15.0,
        warmup=1.0,
        trace=True,
        seed=7,
    )
    experiment = Experiment(config)
    experiment.run()
    trace_dir = Path(results_dir) / "trace"
    chrome_path = write_chrome_trace(
        experiment.tracer.events, trace_dir / "sim-tusk.trace.json"
    )
    write_jsonl(experiment.tracer.events, trace_dir / "sim-tusk.trace.jsonl")
    stages = sorted(experiment.tracer.stages_seen())
    print(
        f"repro-bench: traced point -> {chrome_path} "
        f"({len(experiment.tracer)} events; stages: {', '.join(stages)})"
    )
    return chrome_path


def main(argv: list[str] | None = None) -> int:
    _bootstrap_sys_path()
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shrink every sweep to seconds-long deployments (the CI gate)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel worker processes (default: all cores, or REPRO_BENCH_WORKERS)",
    )
    parser.add_argument(
        "--fleet",
        default=None,
        metavar="SPEC",
        help="shard pending points over a worker fleet before summarizing: "
        "'local[:N]' for N subprocess workers on this machine, or a "
        "TOML/JSON fleet-spec path for ssh hosts (see benchmarks/README.md)",
    )
    parser.add_argument(
        "--fleet-plan",
        action="store_true",
        help="with --list: also print the fleet shard assignment "
        "(pending points per worker, cache hits excluded) without running",
    )
    parser.add_argument(
        "--results",
        default=None,
        help="results directory (default: results/, or REPRO_RESULTS_DIR)",
    )
    parser.add_argument(
        "--only",
        default=None,
        help="run only sweeps whose name contains this substring",
    )
    parser.add_argument(
        "--list", action="store_true", help="print the sweep plan and exit"
    )
    parser.add_argument(
        "--force", action="store_true", help="ignore cached points and recompute"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="duration multiplier for full (non-smoke) sweeps (sets REPRO_BENCH_SCALE)",
    )
    parser.add_argument(
        "--render",
        action="store_true",
        help="after the sweeps, render results/figures/*.svg + results/REPORT.md",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="also run one dedicated traced sweep point and export the "
        "per-transaction lifecycle trace to results/trace/ (Chrome "
        "trace-event JSON for Perfetto plus a JSONL span log)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the sweeps under cProfile + a stack sampler and write "
        "results/profile/ (top-N tables + a flamegraph-ready collapsed-stack "
        "file); forces --workers 1 so the workload runs in-process",
    )
    parser.add_argument(
        "--png",
        action="store_true",
        help="with --render: also write PNGs when matplotlib is importable",
    )
    args = parser.parse_args(argv)

    if args.scale is not None:
        # Must land in the environment before the bench modules build
        # their specs at import time.
        os.environ["REPRO_BENCH_SCALE"] = str(args.scale)

    from repro.sim.sweep import ResultsStore, default_workers, run_sweep

    sweeps = discover_sweeps()
    if args.smoke:
        sweeps = [sweep.smoke() for sweep in sweeps]
    if args.only:
        sweeps = [sweep for sweep in sweeps if args.only in sweep.name]
        if not sweeps:
            parser.error(f"no sweep name contains {args.only!r}")

    total_points = sum(len(sweep.configs) for sweep in sweeps)
    results_dir = args.results or os.environ.get("REPRO_RESULTS_DIR") or "results"
    store = ResultsStore(results_dir)
    if args.fleet_plan and not args.list:
        parser.error("--fleet-plan only makes sense with --list")
    if args.fleet is not None and args.profile:
        parser.error("--profile runs in-process; it cannot be combined with --fleet")
    fleet_spec = None
    if args.fleet is not None or args.fleet_plan:
        from repro.fleet import FleetSpec

        fleet_spec = FleetSpec.load(args.fleet if args.fleet is not None else "local")
    if args.list:
        # Enumerate without running anything: per sweep, the paper
        # figure id, the point count, and how many points the
        # content-addressed cache already holds.
        total_cached = 0
        header = f"{'sweep':<28} {'figure':<14} {'points':>6} {'cached':>9}  title"
        print(header)
        print("-" * len(header))
        for sweep in sweeps:
            cached = sum(1 for config in sweep.configs if store.get(config) is not None)
            total_cached += cached
            print(
                f"{sweep.name:<28} {sweep.figure.figure:<14} "
                f"{len(sweep.configs):>6} {f'{cached}/{len(sweep.configs)}':>9}  "
                f"{sweep.figure.title}"
            )
        print("-" * len(header))
        print(
            f"{'total':<28} {'':<14} {total_points:>6} "
            f"{f'{total_cached}/{total_points}':>9}  (cache: {store.root}/points/)"
        )
        if args.fleet_plan:
            # Shard sizing for the fleet: how a round-robin split of
            # today's *pending* points (cache hits excluded) would land
            # per worker slot — the number that sizes an ssh fleet.
            from repro.fleet import plan_shards
            from repro.fleet.coordinator import pending_items

            items = pending_items(sweeps, store)
            print()
            print(
                f"fleet plan: {fleet_spec.backend} backend, "
                f"{fleet_spec.total_workers} workers, "
                f"{len(items)} pending points "
                f"({total_points - len(items)} cached or duplicate points excluded)"
            )
            for worker, count in plan_shards(items, fleet_spec):
                print(f"  {worker:<24} {count:>6} points")
        return 0
    workers = args.workers if args.workers is not None else default_workers()
    if args.profile:
        # The profiler must see the simulation frames, so the sweep
        # engine has to run points in this process (it goes serial
        # in-process at workers <= 1).
        workers = 1
    if fleet_spec is not None:
        # The fleet is the fan-out; the summary pass below must not
        # open a process pool on top of it (every point is a cache hit
        # by then anyway).
        workers = 1
    mode = "smoke" if args.smoke else "full"
    print(
        f"repro-bench: {len(sweeps)} sweeps, {total_points} points, "
        + (
            f"fleet={fleet_spec.backend}:{fleet_spec.total_workers}"
            if fleet_spec is not None
            else f"{workers} workers"
        )
        + f", mode={mode}, results={store.root}/"
        + (" [profiling]" if args.profile else "")
    )

    if args.force:
        for sweep in sweeps:
            for config in sweep.configs:
                store.point_path(config).unlink(missing_ok=True)
                store.wall_path(config).unlink(missing_ok=True)

    fleet_report = None
    if fleet_spec is not None:
        # Phase 1: shard every cache-missing point over the fleet and
        # merge the results into the content-addressed store.  Phase 2
        # below is then a pure cache walk that writes the per-sweep
        # summaries and applies the usual gates.
        from repro.fleet import run_fleet
        from repro.fleet.coordinator import pending_items

        items = pending_items(sweeps, store)
        if items:
            fleet_report = run_fleet(items, store, fleet_spec, progress=print)
        else:
            print("[fleet] nothing pending - every point already cached")

    def run_sweeps() -> list:
        collected = []
        for sweep in sweeps:
            outcome = run_sweep(sweep, store, workers=workers, progress=print)
            print(
                f"[{sweep.name}] done: {outcome.executed} run, {outcome.cached} cached, "
                f"{outcome.wall_seconds:.1f}s"
            )
            collected.append(outcome)
        return collected

    started = time.perf_counter()
    if args.profile:
        from benchmarks.profiling import profiled

        with profiled(store.root / "profile", name="sweeps"):
            outcomes = run_sweeps()
    else:
        outcomes = run_sweeps()
    wall = time.perf_counter() - started

    executed = sum(o.executed for o in outcomes)
    cached = sum(o.cached for o in outcomes)
    sim_events = sum(r.events_processed for o in outcomes for r in o.results)
    committed = sum(r.blocks_committed for o in outcomes for r in o.results)
    # Drain rate over *executed* points only: mixing cached points'
    # events with this run's wall clock would inflate the rate on any
    # resumed run.
    executed_events = sum(o.executed_events for o in outcomes)
    executed_wall = sum(o.executed_wall_seconds for o in outcomes)
    summary = {
        "mode": mode,
        "sweeps": [
            {
                "name": o.spec.name,
                "points": len(o.results),
                "executed": o.executed,
                "cached": o.cached,
                "wall_seconds": round(o.wall_seconds, 3),
            }
            for o in outcomes
        ],
        "fleet": fleet_report.to_dict() if fleet_report is not None else None,
        "totals": {
            "points": total_points,
            "executed": executed,
            "cached": cached,
            "wall_seconds": round(wall, 3),
            "sim_events": sim_events,
            "blocks_committed": committed,
            "executed_sim_events": executed_events,
            "executed_wall_seconds": round(executed_wall, 3),
            "sim_events_per_second": (
                round(executed_events / executed_wall) if executed_wall > 0 else None
            ),
        },
    }
    store.root.mkdir(parents=True, exist_ok=True)
    (store.root / "summary.json").write_text(json.dumps(summary, indent=2, sort_keys=True))
    print(
        f"repro-bench: {executed} points run, {cached} cached in {wall:.1f}s "
        f"({sim_events:,} sim events; {committed:,} blocks committed)"
    )

    if args.trace:
        run_traced_point(store.root, smoke=args.smoke)

    if args.render:
        # Render before the gates: a failing gate still leaves figures
        # and REPORT.md on disk for the CI artifact / post-mortem.
        from benchmarks.render import render_report

        outputs = render_report(store.root, png=args.png)
        print(
            f"repro-bench: rendered {len(outputs['figures'])} figures -> "
            f"{store.root}/figures/, report -> {outputs['report']}"
        )

    # The smoke gate: every sweep must actually commit blocks somewhere
    # (the wave-3 adversary ablation legitimately stalls individual
    # points, so the bar is per-sweep, not per-point).
    stalled = [
        o.spec.name for o in outcomes if not any(r.blocks_committed > 0 for r in o.results)
    ]
    if stalled:
        print(f"repro-bench: FAIL - no blocks committed in: {', '.join(stalled)}")
        return 1

    # The recovery gate: every sweep that schedules restarts must show a
    # validator actually restarting, re-syncing, and resuming proposing,
    # with the recovery-time metric reported per point.
    failed_recovery = []
    for o in outcomes:
        restarting = [
            r
            for r in o.results
            if r.config.num_recovering
            or any(e.kind in ("recover", "join") for e in r.config.fault_schedule)
        ]
        if restarting and not any(
            r.recoveries > 0 and r.recovery_time_s is not None for r in restarting
        ):
            failed_recovery.append(o.spec.name)
    if failed_recovery:
        print(
            "repro-bench: FAIL - no completed recovery reported in: "
            + ", ".join(failed_recovery)
        )
        return 1

    all_results = [r for o in outcomes for r in o.results]

    # The GC-enabled warm-restart gate: at least one point must restart
    # a validator with garbage collection on, replay its WAL, and report
    # the recovery-time metric — the long-run regime the checkpoint &
    # state-transfer subsystem exists for.  A full run must declare such
    # a point; an --only subset is exempt from declaring but not from
    # completing the ones it does declare.
    warm_gc = [
        r
        for r in all_results
        if r.config.recover_mode == "warm" and r.config.gc_depth > 0
    ]
    if not warm_gc and not args.only:
        print("repro-bench: FAIL - no GC-enabled warm-restart point declared")
        return 1
    if warm_gc and not any(
        r.recoveries > 0 and r.recovery_time_s is not None for r in warm_gc
    ):
        print("repro-bench: FAIL - no GC-enabled warm restart completed")
        return 1

    # The state-transfer gate: checkpoint-mode restarts must actually
    # adopt a quorum-attested checkpoint (crash -> ckpt_req/resp ->
    # adopt -> suffix fetch -> resumed proposing, safety asserted by
    # every run).
    ckpt_points = [r for r in all_results if r.config.recover_mode == "checkpoint"]
    if ckpt_points and not any(r.checkpoint_adoptions > 0 for r in ckpt_points):
        print("repro-bench: FAIL - no checkpoint adoption in any checkpoint-mode point")
        return 1

    # The epoch-reconfiguration gate: a full run must declare at least
    # one point where the committee itself resizes mid-run (n varying
    # through committed join/leave commands); check_epoch_curves below
    # verifies every declared point actually changed n.
    if not any(r.config.epoch_reconfig for r in all_results) and not args.only:
        print("repro-bench: FAIL - no epoch-reconfiguration point declared")
        return 1

    # The adversary gate: a full run must put each modeled adversary on
    # the simulated network — at least one equivocation-campaign point
    # that actually sent conflicting blocks, one partition point that
    # dropped cross-links and healed, and one leader-DoS point.  An
    # --only subset is exempt from declaring but not from completing
    # the points it does declare.
    equivocation_points = [r for r in all_results if r.config.campaign_equivocators]
    partition_points = [
        r
        for r in all_results
        if any(e.kind == "heal" for e in r.config.fault_schedule)
    ]
    dos_points = [r for r in all_results if r.config.leader_dos_slots]
    if not args.only and not (equivocation_points and partition_points and dos_points):
        missing = [
            name
            for name, points in (
                ("equivocation-campaign", equivocation_points),
                ("partition-heal", partition_points),
                ("leader-dos", dos_points),
            )
            if not points
        ]
        print(f"repro-bench: FAIL - no adversary point declared for: {', '.join(missing)}")
        return 1
    if equivocation_points and not any(r.equivocations > 0 for r in equivocation_points):
        print("repro-bench: FAIL - no equivocation-campaign point ever equivocated")
        return 1
    if partition_points and not any(r.messages_dropped > 0 for r in partition_points):
        print("repro-bench: FAIL - no partition point dropped a cross-partition message")
        return 1

    # Curve shapes: the robust protocol orderings the paper's claims
    # rest on, the recovery-mode shape claims (warm < cold, checkpoint
    # ~flat vs cold growing with history), the epoch-reconfiguration
    # claims (n actually resizes; thresholds and availability follow the
    # active epoch), and the adversary-scenario claims (campaigns
    # equivocate without stalling, partitions cost availability and tail
    # latency, multi-slot leader pipelines ride through a targeted DoS,
    # stragglers trail and thin throughput, WAN matrices order by RTT)
    # — see benchmarks/curve_checks.py.  Enforced at any scale, smoke
    # included.
    from benchmarks.curve_checks import (
        check_adversary_curves,
        check_curve_shapes,
        check_epoch_curves,
        check_recovery_curves,
    )

    violations = (
        check_curve_shapes(all_results)
        + check_recovery_curves(all_results)
        + check_epoch_curves(all_results)
        + check_adversary_curves(all_results)
    )
    for violation in violations:
        print(f"repro-bench: curve-shape violation - {violation}")
    if violations:
        return 1

    # The localhost-cluster gate: when bench_cluster.py has produced a
    # metrics file (the CI cluster-smoke job runs it before run_all),
    # hold the runtime backend to its own claims — steady-load commits,
    # all three recovery modes succeeding, checkpoint adoption under GC,
    # and a completed live resize.
    from benchmarks.curve_checks import check_cluster_metrics

    cluster_metrics_path = Path(results_dir) / "cluster" / "cluster_metrics.json"
    if cluster_metrics_path.exists():
        cluster_metrics = json.loads(cluster_metrics_path.read_text())
        cluster_violations = check_cluster_metrics(cluster_metrics)
        for violation in cluster_violations:
            print(f"repro-bench: cluster violation - {violation}")
        if cluster_violations:
            return 1
        print(f"repro-bench: cluster metrics gate passed ({cluster_metrics_path})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
