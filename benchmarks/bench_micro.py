"""Implementation-level micro-benchmarks (Section 4's components):
hashing, signatures, the threshold coin, block codec, the WAL — and the
simulator's event loop, whose drain rate bounds every sweep's wall time
(events/sec is reported before/after the hot-path optimizations so the
speedup is a recorded number)."""

from __future__ import annotations

import heapq
import time


from repro.block import Block, make_genesis
from repro.crypto.coin import FastCoin, ThresholdCoin
from repro.crypto.hashing import hash_bytes
from repro.crypto.schnorr import SchnorrSignatureScheme
from repro.crypto.signing import NullSignatureScheme
from repro.runtime.wal import RECORD_PEER_BLOCK, WriteAheadLog
from repro.sim.events import EventLoop
from repro.sim.runner import Experiment, ExperimentConfig
from repro.transaction import Transaction

from .paper_data import Row, print_table


def sample_block(num_txs=64):
    genesis = make_genesis(10)
    return Block(
        author=1,
        round=1,
        parents=tuple(b.reference for b in genesis),
        transactions=tuple(Transaction.dummy(i) for i in range(num_txs)),
        signature=b"\x00" * 32,
    )


class TestHashing:
    def test_blake2b_512B(self, benchmark):
        data = b"\xab" * 512
        benchmark(hash_bytes, data)

    def test_block_digest(self, benchmark):
        def digest():
            block, _ = Block.decode(ENCODED)
            return block.digest

        ENCODED = sample_block().encode()
        assert len(benchmark(digest)) == 32


class TestSignatures:
    def test_null_sign(self, benchmark):
        scheme = NullSignatureScheme()
        keys = scheme.generate(b"bench")
        benchmark(scheme.sign, keys.private_key, b"message" * 16)

    def test_null_verify(self, benchmark):
        scheme = NullSignatureScheme()
        keys = scheme.generate(b"bench")
        signature = scheme.sign(keys.private_key, b"message")
        assert benchmark(scheme.verify, keys.public_key, b"message", signature)

    def test_schnorr_sign(self, benchmark):
        scheme = SchnorrSignatureScheme()
        keys = scheme.generate(b"bench")
        benchmark(scheme.sign, keys.private_key, b"message" * 16)

    def test_schnorr_verify(self, benchmark):
        scheme = SchnorrSignatureScheme()
        keys = scheme.generate(b"bench")
        signature = scheme.sign(keys.private_key, b"message")
        assert benchmark(scheme.verify, keys.public_key, b"message", signature)


class TestCoin:
    def test_fast_coin_reconstruct(self, benchmark):
        coin = FastCoin(seed=b"bench", n=10, threshold=7)
        shares = [coin.share(i, 5) for i in range(7)]
        benchmark(coin.reconstruct, 5, shares)

    def test_threshold_coin_share(self, benchmark):
        coins = ThresholdCoin.deal(n=4, threshold=3, seed=1)
        benchmark(coins[0].share, 0, 5)

    def test_threshold_coin_reconstruct(self, benchmark):
        coins = ThresholdCoin.deal(n=4, threshold=3, seed=1)
        shares = [coins[i].share(i, 5) for i in range(3)]
        benchmark(coins[0].reconstruct, 5, shares)


class TestCodec:
    def test_block_encode(self, benchmark):
        block = sample_block()
        benchmark(block.encode)

    def test_block_decode(self, benchmark):
        encoded = sample_block().encode()
        block, _ = benchmark(Block.decode, encoded)
        assert block.round == 1


class _BaselineEventLoop:
    """The seed repo's event loop, verbatim — kept as the *before* side
    of the events/sec comparison.  Functionally identical to
    :class:`repro.sim.events.EventLoop`; the optimized version adds
    ``__slots__`` and binds the heap/counter to locals in the drain
    loop instead of resolving ``self.*`` per event."""

    def __init__(self):
        self._now = 0.0
        self._sequence = 0
        self._heap = []
        self._events_processed = 0

    @property
    def now(self):
        return self._now

    @property
    def events_processed(self):
        return self._events_processed

    def schedule(self, delay, callback, *args):
        heapq.heappush(self._heap, (self._now + delay, self._sequence, callback, args))
        self._sequence += 1

    def run_to_completion(self, *, max_events=10_000_000):
        while self._heap:
            if self._events_processed >= max_events:
                raise RuntimeError(f"event budget exhausted ({max_events} events)")
            when, _, callback, args = heapq.heappop(self._heap)
            self._now = when
            self._events_processed += 1
            callback(*args)


def _drive_loop(loop, total=200_000, width=64):
    """A sim-shaped workload: ``width`` concurrent timer chains, each
    event scheduling its successor (like message hops and CPU stages).
    Returns events/sec."""

    def tick(i):
        if i < total:
            loop.schedule(0.001, tick, i + width)

    for i in range(width):
        loop.schedule(0.0, tick, i)
    started = time.perf_counter()
    loop.run_to_completion()
    return loop.events_processed / (time.perf_counter() - started)


class TestEventLoop:
    def test_schedule_pop_cycle(self, benchmark):
        loop = EventLoop()

        def cycle():
            for i in range(100):
                loop.schedule(i * 1e-4, int)
            loop.run_to_completion()

        benchmark(cycle)

    def test_events_per_second_vs_baseline(self, benchmark):
        """The recorded speedup: optimized loop vs the seed loop on the
        same timer-chain workload (best of 3 each, interleaved)."""
        baseline = max(_drive_loop(_BaselineEventLoop()) for _ in range(3))
        optimized = max(_drive_loop(EventLoop()) for _ in range(3))
        print_table(
            "Event-loop drain rate (200k events, 64 timer chains)",
            [
                Row(
                    label="baseline (seed) loop",
                    paper="-",
                    measured=f"{baseline:,.0f} events/s",
                ),
                Row(
                    label="optimized loop",
                    paper="faster than baseline",
                    measured=f"{optimized:,.0f} events/s ({optimized / baseline:.2f}x)",
                ),
            ],
        )
        benchmark.extra_info["baseline_events_per_s"] = baseline
        benchmark.extra_info["optimized_events_per_s"] = optimized
        benchmark.extra_info["speedup"] = optimized / baseline
        benchmark.pedantic(_drive_loop, args=(EventLoop(),), rounds=1, iterations=1)
        # Loose bound: the point is recording the number, not flaking CI.
        assert optimized > baseline * 0.9

    def test_end_to_end_sim_events_per_second(self, benchmark):
        """Whole-simulator drain rate: one smoke-size experiment,
        events/sec across network, CPU stages and clients."""
        config = ExperimentConfig(
            protocol="mahi-mahi-5",
            num_validators=10,
            load_tps=2_000,
            duration=4.0,
            warmup=1.0,
            seed=3,
        )

        def run():
            experiment = Experiment(config)
            started = time.perf_counter()
            result = experiment.run()
            elapsed = time.perf_counter() - started
            return result.events_processed / elapsed

        rate = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table(
            "End-to-end simulator drain rate",
            [Row(label="mahi-mahi-5, n=10, 2k tx/s", paper="-", measured=f"{rate:,.0f} events/s")],
        )
        benchmark.extra_info["sim_events_per_s"] = rate


class TestTracing:
    """The observability before/after pin: a disabled tracer must cost
    attribute-check money, not event-recording money.  Every hot-path
    site is guarded by ``if tracer.enabled:``, so the disabled
    experiment should drain within noise of the recording one's rate
    plus the recording work it skips."""

    CONFIG = dict(
        protocol="mahi-mahi-5",
        num_validators=10,
        load_tps=2_000,
        duration=4.0,
        warmup=1.0,
        seed=3,
    )

    @classmethod
    def _drain_rate(cls, trace):
        experiment = Experiment(ExperimentConfig(trace=trace, **cls.CONFIG))
        started = time.perf_counter()
        result = experiment.run()
        elapsed = time.perf_counter() - started
        return result.events_processed / elapsed

    def test_null_tracer_guard_cost(self, benchmark):
        """The per-site cost when tracing is off: one attribute check
        against the class-level ``enabled = False``."""
        from repro.obs.trace import NULL_TRACER

        tracer = NULL_TRACER

        def guarded(n=100_000):
            hits = 0
            for _ in range(n):
                if tracer.enabled:
                    hits += 1
            return hits

        assert benchmark(guarded) == 0

    def test_sim_drain_rate_disabled_vs_enabled(self, benchmark):
        disabled = max(self._drain_rate(False) for _ in range(2))
        enabled = max(self._drain_rate(True) for _ in range(2))
        print_table(
            "Lifecycle tracing overhead (mahi-mahi-5, n=10, 2k tx/s)",
            [
                Row(
                    label="tracing disabled (default)",
                    paper="near-zero overhead",
                    measured=f"{disabled:,.0f} events/s",
                ),
                Row(
                    label="tracing enabled (--trace)",
                    paper="-",
                    measured=f"{enabled:,.0f} events/s "
                    f"({disabled / enabled:.2f}x slower when on)",
                ),
            ],
        )
        benchmark.extra_info["disabled_events_per_s"] = disabled
        benchmark.extra_info["enabled_events_per_s"] = enabled
        benchmark.extra_info["enabled_overhead_x"] = disabled / enabled
        benchmark.pedantic(self._drain_rate, args=(False,), rounds=1, iterations=1)
        # Loose bound: the disabled path pays only the guard, so it must
        # not drain slower than the recording path beyond noise.
        assert disabled > enabled * 0.9


class _PerMessageNetwork:
    """The pre-batching delivery path, kept as the *before* side of the
    comparison: every message schedules its own event-loop entry (the
    per-message ``schedule_at`` chain the ROADMAP named as the remaining
    profiler peak).  Wire/latency arithmetic matches
    :class:`repro.sim.network.SimNetwork`."""

    def __init__(self, loop, latency, num_validators, seed=0):
        import random

        from repro.sim.network import NetworkConfig

        self._loop = loop
        self._config = NetworkConfig()
        self._rng = random.Random(repr(("network", seed)))
        self._sample_delay = latency.make_sampler(self._rng)
        self._handlers = {}
        self._egress_free = [0.0] * num_validators
        self._last_delivery = {}
        self._n = num_validators

    def register(self, validator, handler):
        self._handlers[validator] = handler

    def send(self, src, dst, kind, payload, size):
        from repro.sim.network import Message

        message = Message(src=src, dst=dst, kind=kind, payload=payload, size=size)
        wire_size = size + self._config.message_overhead
        now = self._loop.now
        start = max(self._egress_free[src], now)
        egress_done = start + wire_size / self._config.bandwidth
        self._egress_free[src] = egress_done
        arrival = egress_done + self._sample_delay(src, dst)
        link = (src, dst)
        last = self._last_delivery.get(link, 0.0) + 1e-9
        if last > arrival:
            arrival = last
        self._last_delivery[link] = arrival
        self._loop.schedule_at(arrival, self._deliver, message)

    def broadcast(self, src, kind, payload, size):
        for dst in range(self._n):
            if dst != src:
                self.send(src, dst, kind, payload, size)

    def _deliver(self, message):
        handler = self._handlers.get(message.dst)
        if handler is not None:
            handler(message)


class TestNetworkDelivery:
    """Batched per-link delivery (one armed flush event per link) vs the
    per-message scheduling chain it replaced."""

    N = 10
    BROADCASTS = 400

    def _drive(self, network_cls):
        from repro.sim.latency import UniformLatencyModel
        from repro.sim.network import NetworkConfig, SimNetwork

        loop = EventLoop()
        latency = UniformLatencyModel(0.05)
        if network_cls is SimNetwork:
            network = SimNetwork(
                loop, latency, self.N, config=NetworkConfig(), seed=1
            )
        else:
            network = network_cls(loop, latency, self.N, seed=1)
        received = [0]

        def on_message(message):
            received[0] += 1

        for validator in range(self.N):
            network.register(validator, on_message)
        started = time.perf_counter()
        # Burst shape: every validator broadcasts repeatedly, so each
        # link accumulates several in-flight messages — the case the
        # per-link batching collapses.
        for round_number in range(self.BROADCASTS):
            src = round_number % self.N
            network.broadcast(src, "block", None, 4096)
        loop.run_to_completion()
        elapsed = time.perf_counter() - started
        expected = self.BROADCASTS * (self.N - 1)
        assert received[0] == expected
        return loop.events_processed, expected / elapsed

    def test_batched_delivery_vs_per_message(self, benchmark):
        from repro.sim.network import SimNetwork

        baseline_events, baseline_rate = self._drive(_PerMessageNetwork)
        batched_events, batched_rate = self._drive(SimNetwork)
        print_table(
            f"Network delivery ({self.BROADCASTS} broadcasts, n={self.N})",
            [
                Row(
                    label="per-message schedule_at (seed)",
                    paper="-",
                    measured=f"{baseline_events:,} loop events, "
                    f"{baseline_rate:,.0f} msgs/s",
                ),
                Row(
                    label="batched per (src, dst) link",
                    paper="fewer loop events",
                    measured=f"{batched_events:,} loop events "
                    f"({baseline_events / batched_events:.1f}x fewer), "
                    f"{batched_rate:,.0f} msgs/s",
                ),
            ],
        )
        benchmark.extra_info["per_message_events"] = baseline_events
        benchmark.extra_info["batched_events"] = batched_events
        benchmark.extra_info["event_reduction"] = baseline_events / batched_events
        benchmark.pedantic(self._drive, args=(SimNetwork,), rounds=1, iterations=1)
        # The point of the batching: strictly fewer event-loop entries
        # for the same delivered messages.
        assert batched_events < baseline_events


class TestWireSizes:
    """The block wire-size memoization (ROADMAP profiler peak): a
    block's simulated size is asked for once per recipient per
    broadcast and once per fetch served, but computed once."""

    @staticmethod
    def _make_validator():
        from repro.committee import Committee
        from repro.config import ProtocolConfig
        from repro.core.protocol import MahiMahiCore
        from repro.sim.events import EventLoop
        from repro.sim.latency import UniformLatencyModel
        from repro.sim.network import SimNetwork
        from repro.sim.node import SimValidator

        committee = Committee.of_size(4)
        coin = FastCoin(seed=b"wire", n=4, threshold=committee.quorum_threshold)
        loop = EventLoop()
        network = SimNetwork(loop, UniformLatencyModel(0.05), 4, seed=1)
        core = MahiMahiCore(0, committee, ProtocolConfig(), coin)
        return SimValidator(core, network, loop, mixed_tx_sizes=True)

    def test_block_wire_size_memoized(self, benchmark):
        node = self._make_validator()
        block = Block(
            author=1,
            round=1,
            parents=tuple(b.reference for b in make_genesis(10)),
            transactions=tuple(
                Transaction(tx_id=i, size_hint=128 if i % 2 else 4096) for i in range(256)
            ),
        )

        def uncached():
            block.__dict__.pop("_sim_wire_size", None)
            return node._block_wire_size(block)

        cold = benchmark.pedantic(uncached, rounds=200, iterations=1)

        def run_memoized():
            for _ in range(1000):
                node._block_wire_size(block)

        started = time.perf_counter()
        run_memoized()
        per_hit = (time.perf_counter() - started) / 1000
        started = time.perf_counter()
        for _ in range(200):
            uncached()
        per_miss = (time.perf_counter() - started) / 200
        print_table(
            "Block wire-size accounting (256 mixed-size txs)",
            [
                Row(
                    label="recompute per send (seed)",
                    paper="-",
                    measured=f"{per_miss * 1e6:.2f} us",
                ),
                Row(
                    label="memoized on block",
                    paper="cheaper than recompute",
                    measured=f"{per_hit * 1e6:.3f} us ({per_miss / max(per_hit, 1e-12):.0f}x)",
                ),
            ],
        )
        benchmark.extra_info["recompute_us"] = per_miss * 1e6
        benchmark.extra_info["memoized_us"] = per_hit * 1e6
        assert cold == node._block_wire_size(block)
        assert per_hit < per_miss


class TestCommitWalk:
    """Round-scoped epoch invalidation vs the full-clear re-walk it
    replaced: replay the canonical epoch-resize stream (committee grows
    4 -> committee shrinks, several activations mid-walk) in catch-up
    chunks and compare ns per finalized slot."""

    ROUNDS = 60
    LAG = 16
    CHUNK = 12
    GENESIS = 6
    PROVISIONED = 10

    def _replay_time(self, stream, committer_cls, chunk_rounds, repeats=5):
        from benchmarks.commit_walk import replay_stream

        best = float("inf")
        slots = 0
        for _ in range(repeats):
            started = time.perf_counter()
            observations, _ = replay_stream(
                stream, committer_cls=committer_cls, chunk_rounds=chunk_rounds
            )
            best = min(best, time.perf_counter() - started)
            slots = len(observations)
        return best, slots

    def test_epoch_resize_incremental_vs_full_clear(self, benchmark):
        from repro.core.committer import Committer

        from benchmarks.commit_walk import (
            FullClearCommitter,
            build_epoch_resize_stream,
            observation_fingerprint,
            replay_stream,
        )

        stream = build_epoch_resize_stream(
            rounds=self.ROUNDS,
            lag=self.LAG,
            genesis_size=self.GENESIS,
            provisioned=self.PROVISIONED,
        )
        full_s, full_slots = self._replay_time(stream, FullClearCommitter, self.CHUNK)
        inc_s, inc_slots = self._replay_time(stream, Committer, self.CHUNK)
        assert full_slots == inc_slots > 0
        # Identical finalized observations — the safety half of the
        # comparison (the dedicated equivalence test covers more shapes).
        assert observation_fingerprint(
            replay_stream(stream, committer_cls=Committer, chunk_rounds=self.CHUNK)[0]
        ) == observation_fingerprint(
            replay_stream(
                stream, committer_cls=FullClearCommitter, chunk_rounds=self.CHUNK
            )[0]
        )
        full_ns = full_s / full_slots * 1e9
        inc_ns = inc_s / inc_slots * 1e9
        print_table(
            f"Epoch-resize commit walk ({self.ROUNDS} rounds, "
            f"n={self.GENESIS}->{self.PROVISIONED}, chunks of {self.CHUNK})",
            [
                Row(
                    label="full-clear on activation (PR 5)",
                    paper="-",
                    measured=f"{full_ns:,.0f} ns/slot",
                ),
                Row(
                    label="round-scoped invalidation",
                    paper="strictly faster",
                    measured=f"{inc_ns:,.0f} ns/slot ({full_s / inc_s:.2f}x)",
                ),
            ],
        )
        benchmark.extra_info["full_clear_ns_per_slot"] = full_ns
        benchmark.extra_info["incremental_ns_per_slot"] = inc_ns
        benchmark.extra_info["speedup"] = full_s / inc_s
        benchmark.pedantic(
            replay_stream,
            args=(stream,),
            kwargs={"chunk_rounds": self.CHUNK},
            rounds=1,
            iterations=1,
        )
        # The acceptance bar: the epoch-activation re-walk is eliminated,
        # so the incremental variant must be strictly faster here.
        assert inc_s < full_s


class TestWal:
    def test_append(self, benchmark, tmp_path):
        payload = sample_block().encode()
        with WriteAheadLog(tmp_path / "bench.wal") as wal:
            benchmark(wal.append, RECORD_PEER_BLOCK, payload)

    def test_recover_1000_blocks(self, benchmark, tmp_path):
        path = tmp_path / "recover.wal"
        payload = sample_block().encode()
        with WriteAheadLog(path) as wal:
            for _ in range(1000):
                wal.append(RECORD_PEER_BLOCK, payload)
        records = benchmark(lambda: list(WriteAheadLog.read_records(path)))
        assert len(records) == 1000
