"""Implementation-level micro-benchmarks (Section 4's components):
hashing, signatures, the threshold coin, block codec and the WAL."""

from __future__ import annotations

import pytest

from repro.block import Block, make_genesis
from repro.crypto.coin import FastCoin, ThresholdCoin
from repro.crypto.hashing import hash_bytes
from repro.crypto.schnorr import SchnorrSignatureScheme
from repro.crypto.signing import NullSignatureScheme
from repro.runtime.wal import RECORD_PEER_BLOCK, WriteAheadLog
from repro.transaction import Transaction


def sample_block(num_txs=64):
    genesis = make_genesis(10)
    return Block(
        author=1,
        round=1,
        parents=tuple(b.reference for b in genesis),
        transactions=tuple(Transaction.dummy(i) for i in range(num_txs)),
        signature=b"\x00" * 32,
    )


class TestHashing:
    def test_blake2b_512B(self, benchmark):
        data = b"\xab" * 512
        benchmark(hash_bytes, data)

    def test_block_digest(self, benchmark):
        def digest():
            block, _ = Block.decode(ENCODED)
            return block.digest

        ENCODED = sample_block().encode()
        assert len(benchmark(digest)) == 32


class TestSignatures:
    def test_null_sign(self, benchmark):
        scheme = NullSignatureScheme()
        keys = scheme.generate(b"bench")
        benchmark(scheme.sign, keys.private_key, b"message" * 16)

    def test_null_verify(self, benchmark):
        scheme = NullSignatureScheme()
        keys = scheme.generate(b"bench")
        signature = scheme.sign(keys.private_key, b"message")
        assert benchmark(scheme.verify, keys.public_key, b"message", signature)

    def test_schnorr_sign(self, benchmark):
        scheme = SchnorrSignatureScheme()
        keys = scheme.generate(b"bench")
        benchmark(scheme.sign, keys.private_key, b"message" * 16)

    def test_schnorr_verify(self, benchmark):
        scheme = SchnorrSignatureScheme()
        keys = scheme.generate(b"bench")
        signature = scheme.sign(keys.private_key, b"message")
        assert benchmark(scheme.verify, keys.public_key, b"message", signature)


class TestCoin:
    def test_fast_coin_reconstruct(self, benchmark):
        coin = FastCoin(seed=b"bench", n=10, threshold=7)
        shares = [coin.share(i, 5) for i in range(7)]
        benchmark(coin.reconstruct, 5, shares)

    def test_threshold_coin_share(self, benchmark):
        coins = ThresholdCoin.deal(n=4, threshold=3, seed=1)
        benchmark(coins[0].share, 0, 5)

    def test_threshold_coin_reconstruct(self, benchmark):
        coins = ThresholdCoin.deal(n=4, threshold=3, seed=1)
        shares = [coins[i].share(i, 5) for i in range(3)]
        benchmark(coins[0].reconstruct, 5, shares)


class TestCodec:
    def test_block_encode(self, benchmark):
        block = sample_block()
        benchmark(block.encode)

    def test_block_decode(self, benchmark):
        encoded = sample_block().encode()
        block, _ = benchmark(Block.decode, encoded)
        assert block.round == 1


class TestWal:
    def test_append(self, benchmark, tmp_path):
        payload = sample_block().encode()
        with WriteAheadLog(tmp_path / "bench.wal") as wal:
            benchmark(wal.append, RECORD_PEER_BLOCK, payload)

    def test_recover_1000_blocks(self, benchmark, tmp_path):
        path = tmp_path / "recover.wal"
        payload = sample_block().encode()
        with WriteAheadLog(path) as wal:
            for _ in range(1000):
                wal.append(RECORD_PEER_BLOCK, payload)
        records = benchmark(lambda: list(WriteAheadLog.read_records(path)))
        assert len(records) == 1000
