"""Appendix C: commit-probability analysis (Lemmas 13 and 16).

Checks the closed forms against Monte-Carlo sampling and against the
simulator: the per-round direct-commit rate measured in a live run must
track the analytical prediction for the benign network.
"""

from __future__ import annotations

import pytest

from repro.analysis.commit_probability import (
    direct_commit_probability_w4,
    direct_commit_probability_w5,
    monte_carlo_direct_commit_w5,
    unreachable_pair_bound,
)
from repro.sim.runner import ExperimentConfig
from repro.sim.sweep import FigureSpec, SweepSpec, run_configs

from .paper_data import Row, bench_scale, print_table

SWEEP_DIRECT_RATE = SweepSpec(
    name="appendix-c-direct-rate",
    figure=FigureSpec(
        figure="appendix-c",
        title="Simulated direct-commit rate vs Lemma 17 (benign network)",
        y_axis="direct_commits",
        x_label="Offered load (tx/s)",
        y_label="Directly committed slots",
    ),
    configs=(
        ExperimentConfig(
            protocol="mahi-mahi-5",
            num_validators=10,
            load_tps=5_000,
            duration=12.0 * bench_scale(),
            warmup=3.0 * bench_scale(),
            seed=11,
        ),
    ),
)

SWEEPS = (SWEEP_DIRECT_RATE,)


def test_lemma13_closed_form_vs_monte_carlo(benchmark):
    cases = [(1, 1), (3, 1), (3, 2), (3, 3), (5, 2)]

    def sample_all():
        return {
            (f, k): monte_carlo_direct_commit_w5(f, k, trials=50_000)
            for f, k in cases
        }

    sampled = benchmark(sample_all)
    rows = []
    for (f, k), measured in sampled.items():
        closed = direct_commit_probability_w5(f, k)
        rows.append(
            Row(
                label=f"w=5, f={f}, {k} leader(s)",
                paper=f"p* = {closed:.4f}",
                measured=f"monte-carlo {measured:.4f}",
            )
        )
        assert measured == pytest.approx(closed, abs=0.01)
    print_table("Lemma 13: direct-commit probability (w=5)", rows)


def test_lemma16_w4_probabilities(benchmark):
    def compute():
        return {
            (f, k): direct_commit_probability_w4(f, k)
            for f in (1, 3, 5)
            for k in (1, 2, 3)
        }

    values = benchmark(compute)
    rows = [
        Row(
            label=f"w=4, f={f}, {k} leader(s)",
            paper=f"l/(3f+1) = {k}/{3 * f + 1}",
            measured=f"{p:.4f}",
        )
        for (f, k), p in values.items()
    ]
    print_table("Lemma 16: direct-commit probability (w=4, adversary)", rows)


def test_lemma17_random_network_bound(benchmark):
    bounds = benchmark(lambda: {f: unreachable_pair_bound(f) for f in (1, 3, 5, 16)})
    rows = [
        Row(
            label=f"f={f} (n={3 * f + 1})",
            paper="(3f+1)^2 (1-p)^(2f+1) -> 0",
            measured=f"{bound:.2e}",
        )
        for f, bound in bounds.items()
    ]
    print_table("Lemma 17: unreachable-pair bound (random network)", rows)
    assert bounds[16] < bounds[1]


def test_simulated_direct_commit_rate_tracks_lemma(benchmark):
    """In the benign simulated network, nearly every slot decides via
    the direct rule — consistent with Lemma 17's with-high-probability
    claim for the random network model."""

    def run():
        [result] = run_configs(SWEEP_DIRECT_RATE.configs)
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    total = (
        result.direct_commits
        + result.indirect_commits
        + result.direct_skips
        + result.indirect_skips
    )
    direct_fraction = result.direct_commits / max(1, total)
    print_table(
        "Simulated direct-commit rate (benign network)",
        [
            Row(
                label="fraction of slots committed directly",
                paper="~1 with high probability",
                measured=f"{direct_fraction:.3f} ({result.direct_commits}/{total})",
            )
        ],
    )
    assert direct_fraction > 0.9
