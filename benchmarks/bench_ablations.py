"""Ablations of Mahi-Mahi's design choices (DESIGN.md inventory).

Not paper figures, but quantifications of the decisions the paper
argues for in prose:

* **wave length 3 vs 4 vs 5** — w=3 stays safe but loses the common-core
  guarantee (Appendix C.3 note): under an active asynchronous adversary
  its direct-commit rate collapses, while w=4/5 keep committing;
* **direct skip on vs off** — the rule behind claim C3: disabling it
  turns crashed leaders into head-of-line blockers;
* **one wave per round vs non-overlapping waves** — Mahi-Mahi's
  overlapping waves vs the Cordial-Miners-style cadence.

The ablation points are declared as data (``SWEEPS``) and consumed both
by these pytest-benchmark tests and by ``run_all.py``.
"""

from __future__ import annotations

from repro.sim.runner import ExperimentConfig
from repro.sim.sweep import FigureSpec, SweepSpec, run_configs

from .paper_data import Row, bench_scale, print_table

_SCALE = bench_scale()


def _config(**overrides) -> ExperimentConfig:
    base = dict(
        protocol="mahi-mahi-5",
        num_validators=10,
        load_tps=5_000,
        duration=14.0 * _SCALE,
        warmup=4.0 * _SCALE,
        seed=17,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


SWEEP_WAVE_LENGTH = SweepSpec(
    name="ablation-wave-length",
    figure=FigureSpec(
        figure="ablation",
        title="Ablation: wave length under asynchronous adversary",
        x_axis="wave_length_override",
        y_axis="blocks_committed",
        series_key="protocol",
        x_label="Wave length (rounds)",
        y_label="Blocks committed",
    ),
    configs=tuple(
        _config(wave_length_override=wave, adversary_targets=3, adversary_delay=0.4)
        for wave in (3, 4, 5)
    ),
)

SWEEP_DIRECT_SKIP = SweepSpec(
    name="ablation-direct-skip",
    figure=FigureSpec(
        figure="ablation",
        title="Ablation: direct skip rule (3 crash faults)",
        x_axis="direct_skip",
        series_key="num_crashed",
        x_label="Direct skip rule",
        y_label="Average commit latency (s)",
        series_label="{} crash faults",
    ),
    configs=(
        _config(num_crashed=3),
        _config(num_crashed=3, direct_skip=False),
    ),
)

SWEEP_OVERLAPPING_WAVES = SweepSpec(
    name="ablation-overlapping-waves",
    figure=FigureSpec(
        figure="ablation",
        title="Ablation: overlapping waves vs one wave per 5 rounds",
        x_label="Offered load (tx/s)",
        y_label="Average commit latency (s)",
    ),
    configs=(
        _config(),
        _config(protocol="cordial-miners"),
    ),
)

SWEEPS = (SWEEP_WAVE_LENGTH, SWEEP_DIRECT_SKIP, SWEEP_OVERLAPPING_WAVES)


def test_ablation_wave_length_under_adversary(benchmark):
    """w=3 loses the Lemma 10 liveness guarantee; under a rotating
    asynchronous adversary its decisions stall while w=4/5 progress."""

    def sweep():
        results = run_configs(SWEEP_WAVE_LENGTH.configs)
        return {r.config.wave_length_override: r for r in results}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for wave, result in results.items():
        decided = (
            result.direct_commits
            + result.indirect_commits
            + result.direct_skips
            + result.indirect_skips
        )
        rows.append(
            Row(
                label=f"wave length {wave} (adversary active)",
                paper="w=3 not live; w>=4 live",
                measured=(
                    f"{result.blocks_committed} blocks committed, "
                    f"{decided} slots decided"
                ),
            )
        )
    print_table("Ablation: wave length under asynchronous adversary", rows)
    # All wave lengths stay live in absolute terms...
    assert results[5].blocks_committed > 0
    assert results[4].blocks_committed > 0
    # ...but w=3's lost common-core guarantee shows up as leaders
    # skipped under the adversary, while w=5 skips (almost) nothing and
    # directly commits far more slots.  (Raw blocks_committed is too
    # noisy to order w=3 vs w=4 on a single seed: skipped leaders are
    # recovered through later anchors.)
    assert results[3].direct_skips > results[4].direct_skips >= results[5].direct_skips
    assert results[5].direct_commits > results[3].direct_commits


def test_ablation_direct_skip_rule(benchmark):
    """Disabling the direct skip rule under 3 crash faults: dead leader
    slots wait for anchors, inflating latency (Section 5.3)."""

    def pair():
        with_skip, without_skip = run_configs(SWEEP_DIRECT_SKIP.configs)
        return {"with skip": with_skip, "without skip": without_skip}

    results = benchmark.pedantic(pair, rounds=1, iterations=1)
    rows = [
        Row(
            label=f"mahi-mahi-5, 3 faults, {label}",
            paper="direct skip avoids ~2-round stalls",
            measured=(
                f"{result.latency.avg:.2f}s avg, skips "
                f"{result.direct_skips}/{result.indirect_skips} direct/indirect"
            ),
        )
        for label, result in results.items()
    ]
    print_table("Ablation: direct skip rule (3 crash faults)", rows)
    assert results["with skip"].direct_skips > 0
    assert results["without skip"].direct_skips == 0
    assert (
        results["with skip"].latency.avg <= results["without skip"].latency.avg
    )


def test_ablation_overlapping_waves(benchmark):
    """One wave per round (Mahi-Mahi) vs one wave per 5 rounds (the
    Cordial Miners cadence) — the overlap is what removes the
    wave-position latency penalty for non-leader blocks."""

    def pair():
        overlapping, non_overlapping = run_configs(SWEEP_OVERLAPPING_WAVES.configs)
        return {
            "overlapping (every round)": overlapping,
            "non-overlapping (every 5)": non_overlapping,
        }

    results = benchmark.pedantic(pair, rounds=1, iterations=1)
    rows = [
        Row(
            label=label,
            paper="overlap removes wave-wait",
            measured=f"{result.latency.avg:.2f}s avg, p99 {result.latency.p99:.2f}s",
        )
        for label, result in results.items()
    ]
    print_table("Ablation: overlapping waves", rows)
    assert (
        results["overlapping (every round)"].latency.avg
        < results["non-overlapping (every 5)"].latency.avg
    )
