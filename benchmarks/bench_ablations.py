"""Ablations of Mahi-Mahi's design choices (DESIGN.md inventory).

Not paper figures, but quantifications of the decisions the paper
argues for in prose:

* **wave length 3 vs 4 vs 5** — w=3 stays safe but loses the common-core
  guarantee (Appendix C.3 note): under an active asynchronous adversary
  its direct-commit rate collapses, while w=4/5 keep committing;
* **direct skip on vs off** — the rule behind claim C3: disabling it
  turns crashed leaders into head-of-line blockers;
* **one wave per round vs non-overlapping waves** — Mahi-Mahi's
  overlapping waves vs the Cordial-Miners-style cadence.
"""

from __future__ import annotations

import pytest

from repro.sim.runner import Experiment, ExperimentConfig

from .paper_data import Row, bench_scale, print_table


def run(**overrides):
    scale = bench_scale()
    config = ExperimentConfig(
        protocol="mahi-mahi-5",
        num_validators=10,
        load_tps=5_000,
        duration=14.0 * scale,
        warmup=4.0 * scale,
        seed=17,
        **overrides,
    )
    return Experiment(config).run(check_safety=True)


def test_ablation_wave_length_under_adversary(benchmark):
    """w=3 loses the Lemma 10 liveness guarantee; under a rotating
    asynchronous adversary its decisions stall while w=4/5 progress."""

    def sweep():
        out = {}
        for wave in (3, 4, 5):
            out[wave] = run(
                wave_length_override=wave,
                adversary_targets=3,
                adversary_delay=0.4,
            )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for wave, result in results.items():
        decided = (
            result.direct_commits
            + result.indirect_commits
            + result.direct_skips
            + result.indirect_skips
        )
        rows.append(
            Row(
                label=f"wave length {wave} (adversary active)",
                paper="w=3 not live; w>=4 live",
                measured=(
                    f"{result.blocks_committed} blocks committed, "
                    f"{decided} slots decided"
                ),
            )
        )
    print_table("Ablation: wave length under asynchronous adversary", rows)
    # Liveness ordering: longer waves decide at least as much.
    assert results[5].blocks_committed > 0
    assert results[4].blocks_committed > 0
    assert results[3].blocks_committed <= results[4].blocks_committed


def test_ablation_direct_skip_rule(benchmark):
    """Disabling the direct skip rule under 3 crash faults: dead leader
    slots wait for anchors, inflating latency (Section 5.3)."""

    def pair():
        return {
            "with skip": run(num_crashed=3),
            "without skip": run(num_crashed=3, direct_skip=False),
        }

    results = benchmark.pedantic(pair, rounds=1, iterations=1)
    rows = [
        Row(
            label=f"mahi-mahi-5, 3 faults, {label}",
            paper="direct skip avoids ~2-round stalls",
            measured=(
                f"{result.latency.avg:.2f}s avg, skips "
                f"{result.direct_skips}/{result.indirect_skips} direct/indirect"
            ),
        )
        for label, result in results.items()
    ]
    print_table("Ablation: direct skip rule (3 crash faults)", rows)
    assert results["with skip"].direct_skips > 0
    assert results["without skip"].direct_skips == 0
    assert (
        results["with skip"].latency.avg <= results["without skip"].latency.avg
    )


def test_ablation_overlapping_waves(benchmark):
    """One wave per round (Mahi-Mahi) vs one wave per 5 rounds (the
    Cordial Miners cadence) — the overlap is what removes the
    wave-position latency penalty for non-leader blocks."""

    def pair():
        return {
            "overlapping (every round)": run(),
            "non-overlapping (every 5)": Experiment(
                ExperimentConfig(
                    protocol="cordial-miners",
                    num_validators=10,
                    load_tps=5_000,
                    duration=14.0 * bench_scale(),
                    warmup=4.0 * bench_scale(),
                    seed=17,
                )
            ).run(),
        }

    results = benchmark.pedantic(pair, rounds=1, iterations=1)
    rows = [
        Row(
            label=label,
            paper="overlap removes wave-wait",
            measured=f"{result.latency.avg:.2f}s avg, p99 {result.latency.p99:.2f}s",
        )
        for label, result in results.items()
    ]
    print_table("Ablation: overlapping waves", rows)
    assert (
        results["overlapping (every round)"].latency.avg
        < results["non-overlapping (every 5)"].latency.avg
    )
