#!/usr/bin/env python3
"""Quickstart: four Mahi-Mahi validators committing transactions.

Drives four in-process validator cores in lockstep — no networking, no
simulation — to show the protocol's moving parts: proposals, the DAG,
the decision rules, and the resulting total order.

Run:  python examples/quickstart.py
"""

from repro import Committee, MahiMahiCore, ProtocolConfig, Transaction
from repro.crypto.coin import FastCoin


def main() -> None:
    # A committee of n = 4 validators tolerates f = 1 Byzantine fault.
    committee = Committee.of_size(4)
    config = ProtocolConfig(wave_length=5, leaders_per_round=2)
    coin = FastCoin(seed=b"quickstart", n=4, threshold=committee.quorum_threshold)
    validators = [MahiMahiCore(i, committee, config, coin) for i in range(4)]

    print(f"committee: n={committee.size}, f={committee.faults_tolerated}, "
          f"quorum={committee.quorum_threshold}")
    print(f"config: wave length {config.wave_length}, "
          f"{config.leaders_per_round} leader slots per round\n")

    # Drive 12 rounds: every validator proposes once per round and
    # receives everyone else's block ("lockstep" — the simulator and the
    # asyncio runtime replace this loop with a real network).
    tx_id = 0
    for round_number in range(1, 13):
        blocks = []
        for validator in validators:
            tx_id += 1
            validator.add_transaction(Transaction.dummy(tx_id))
            block = validator.maybe_propose()
            if block is not None:
                blocks.append(block)
        for block in blocks:
            for validator in validators:
                if validator.authority != block.author:
                    validator.add_block(block)
        for validator in validators:
            for observation in validator.try_commit():
                if validator.authority == 0 and observation.linearized:
                    status = observation.status
                    print(
                        f"round {round_number:>2}: slot {status.slot} "
                        f"{'direct' if status.direct else 'indirect'}-committed, "
                        f"linearized {len(observation.linearized)} blocks"
                    )

    # Every validator reports the exact same committed sequence.
    sequences = [[b.digest for b in v.committed_blocks()] for v in validators]
    assert all(s == sequences[0] for s in sequences), "total order violated!"
    committed_txs = sum(
        len(b.transactions) for b in validators[0].committed_blocks()
    )
    print(f"\nall 4 validators agree on {len(sequences[0])} committed blocks "
          f"({committed_txs} transactions)")
    stats = validators[0].committer.stats
    print(f"decision mix: {stats.direct_commits} direct commits, "
          f"{stats.indirect_commits} indirect, "
          f"{stats.direct_skips + stats.indirect_skips} skips")


if __name__ == "__main__":
    main()
