#!/usr/bin/env python3
"""Byzantine equivocation: safety without certificates (paper §3.2).

Mahi-Mahi's uncertified DAG cannot prevent a Byzantine validator from
signing two different blocks for the same round.  This example runs a
committee with three active equivocators — each sends conflicting
blocks to different halves of the network every round — and shows that:

* honest validators still agree on a single total order (Theorem 1);
* at most one equivocating sibling per slot ever commits (Lemma 2);
* no block is delivered twice (Integrity, Theorem 2).

Run:  python examples/byzantine_equivocation.py
"""

from repro.sim import Experiment, ExperimentConfig


def main() -> None:
    config = ExperimentConfig(
        protocol="mahi-mahi-5",
        num_validators=10,
        num_equivocators=3,  # the maximum f for n = 10
        load_tps=5_000,
        duration=12.0,
        warmup=4.0,
        seed=13,
    )
    experiment = Experiment(config)
    result = experiment.run()  # run() raises if total order is violated

    print("10 validators, 3 of them equivocating every round\n")
    print(f"committed blocks     : {result.blocks_committed}")
    print(f"avg commit latency   : {result.latency.avg:.2f}s "
          "(slower than benign: equivocated slots resolve via anchors)")
    print(f"slot decisions       : {result.direct_commits} direct commits, "
          f"{result.indirect_commits} indirect commits,")
    print(f"                       {result.direct_skips} direct skips, "
          f"{result.indirect_skips} indirect skips")

    # Check Lemma 2 on the observer's DAG: no slot has two committed
    # sibling blocks.
    observer = experiment.nodes[0].core
    committed_by_slot = {}
    for block in observer.committed_blocks():
        committed_by_slot.setdefault(block.slot, set()).add(block.digest)
    equivocated_slots = {
        slot: digests
        for slot, digests in committed_by_slot.items()
        if len(digests) > 1
    }
    print(f"\nnon-leader slots whose linearization carries both siblings: "
          f"{len(equivocated_slots)} — allowed: equivocating non-leader "
          "blocks are ordinary data, and every honest validator orders "
          "them identically")

    # The strict guarantee is on *leader* slots: verify none of the
    # finalized leader slots committed more than one block.
    leader_blocks = {}
    for observation in observer.committed:
        status = observation.status
        if status.block is not None:
            key = (status.slot.round, status.slot.authority)
            assert key not in leader_blocks or leader_blocks[key] == status.block.digest
            leader_blocks[key] = status.block.digest
    print(f"leader slots committed: {len(leader_blocks)}, "
          "each with exactly one block  [Lemma 2 holds]")
    print("\nhonest validators reported identical commit sequences  "
          "[Total Order holds]")


if __name__ == "__main__":
    main()
