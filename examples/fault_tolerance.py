#!/usr/bin/env python3
"""Crash faults and the direct skip rule (paper Section 5.3, Figure 4).

Runs 10 validators with 3 crashed (the maximum tolerable for n = 10) and
shows why Mahi-Mahi stays fast: dead leaders' slots are classified
``skip`` by the direct rule two rounds earlier than Cordial Miners'
anchor-based skipping — no head-of-line blocking.

Run:  python examples/fault_tolerance.py
"""

from repro.sim import Experiment, ExperimentConfig


def run(protocol: str, crashed: int):
    config = ExperimentConfig(
        protocol=protocol,
        num_validators=10,
        num_crashed=crashed,
        load_tps=10_000,
        duration=12.0,
        warmup=4.0,
        seed=9,
    )
    return Experiment(config).run()


def main() -> None:
    print("== ideal vs 3 crash faults ==\n")
    for protocol in ("mahi-mahi-5", "cordial-miners"):
        ideal = run(protocol, crashed=0)
        faulty = run(protocol, crashed=3)
        print(f"{protocol}:")
        print(f"  ideal   : {ideal.latency.avg:.2f}s avg latency")
        print(
            f"  3 faults: {faulty.latency.avg:.2f}s avg latency "
            f"({faulty.direct_skips} direct skips, "
            f"{faulty.indirect_skips} indirect skips)"
        )
        penalty = faulty.latency.avg - ideal.latency.avg
        print(f"  fault penalty: {penalty * 1000:+.0f} ms\n")

    mahi = run("mahi-mahi-5", crashed=3)
    cm = run("cordial-miners", crashed=3)
    advantage = (1 - mahi.latency.avg / cm.latency.avg) * 100
    print(f"Mahi-Mahi's direct skip rule gives it {advantage:.0f}% lower latency "
          "than Cordial Miners under faults")
    print("(paper: ~50% — 0.95s vs 1.7s, Fig. 4)")


if __name__ == "__main__":
    main()
