#!/usr/bin/env python3
"""A live asyncio cluster: real sockets, real signatures, real WAL.

Starts four networked validators in this process (length-prefixed TCP on
localhost, like the paper's raw-TCP Rust validator), submits client
transactions, waits for commits, and prints per-transaction latency.

Run:  python examples/live_cluster.py
"""

import asyncio
import tempfile
import time

from repro.config import ProtocolConfig
from repro.runtime import LocalCluster
from repro.transaction import Transaction


async def main() -> None:
    with tempfile.TemporaryDirectory() as wal_dir:
        cluster = LocalCluster(
            n=4,
            config=ProtocolConfig(wave_length=5, leaders_per_round=2),
            transport="tcp",
            base_port=29210,
            wal_dir=wal_dir,
            min_block_interval=0.02,
        )
        async with cluster:
            print("4 validators listening on 127.0.0.1:29210-29213, "
                  f"WALs in {wal_dir}\n")

            latencies = []
            for i in range(10):
                tx_id = i + 1
                submitted = time.perf_counter()
                cluster.submit(Transaction.dummy(tx_id), validator=i % 4)
                await cluster.wait_for_transaction(tx_id, timeout=30)
                latency = time.perf_counter() - submitted
                latencies.append(latency)
                print(f"tx {tx_id:>2} submitted to validator {i % 4} -> "
                      f"committed in {latency * 1000:6.1f} ms")

            print(f"\navg commit latency: "
                  f"{sum(latencies) / len(latencies) * 1000:.1f} ms "
                  "(localhost loopback; WAN adds the paper's geo delays)")

            # All validators end with prefix-consistent sequences.
            sequences = [
                [b.digest for b in node.committed_blocks] for node in cluster.nodes
            ]
            shortest = min(len(s) for s in sequences)
            assert all(s[:shortest] == sequences[0][:shortest] for s in sequences)
            print(f"all validators agree on the first {shortest} committed blocks")


if __name__ == "__main__":
    asyncio.run(main())
