#!/usr/bin/env python3
"""Geo-replicated comparison: Mahi-Mahi vs Cordial Miners vs Tusk.

Reproduces a slice of the paper's Figure 3 on the simulated WAN: 10
validators across the five AWS regions of Section 5.1, open-loop clients
at 20k tx/s, no faults.  Expect the paper's latency ordering —
Mahi-Mahi-4 < Mahi-Mahi-5 < Cordial Miners < Tusk.

Run:  python examples/geo_replication.py
"""

from repro.sim import Experiment, ExperimentConfig


def main() -> None:
    print("protocol        | avg latency | p99 latency | throughput | direct commits")
    print("----------------|-------------|-------------|------------|---------------")
    for protocol in ("mahi-mahi-4", "mahi-mahi-5", "cordial-miners", "tusk"):
        config = ExperimentConfig(
            protocol=protocol,
            num_validators=10,
            load_tps=20_000,
            duration=12.0,
            warmup=4.0,
            seed=42,
        )
        result = Experiment(config).run()  # also asserts total order
        total_slots = (
            result.direct_commits
            + result.indirect_commits
            + result.direct_skips
            + result.indirect_skips
        )
        print(
            f"{protocol:<15} | {result.latency.avg:>10.2f}s | "
            f"{result.latency.p99:>10.2f}s | "
            f"{result.throughput_tps / 1000:>7.1f}k/s | "
            f"{result.direct_commits}/{total_slots} slots"
        )
    print("\n(paper, Fig. 3 @ 10 nodes: mahi-mahi-4 0.9s, mahi-mahi-5 1.1s, "
          "cordial miners 1.5s, tusk 3.5s)")


if __name__ == "__main__":
    main()
