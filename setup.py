"""Legacy setup shim: environments without the `wheel` package cannot do
PEP 517 editable installs; `pip install -e . --no-build-isolation` uses
this file instead.  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
